//! Algorithm 1 assembled: the paper's tester for the class `H_k`.
//!
//! ```text
//! 1.  b = 20·k·log k / ε
//! 2.  ApproxPart(b)            -> partition I (K intervals)    [Prop 3.4]
//! 3.  Learner(K, ε/60, I)      -> hypothesis D̂ ∈ H_K           [Lemma 3.5]
//! 4.  Sieve                    -> discard O(k log k) intervals  [§3.2.1]
//! 5.  Check ∃D*∈H_k close to D̂ on G, else reject       [CDGR16 Lem 4.11]
//! 6.  ADK χ² test of D vs D̂ on G at ε' = 13ε/30         [Thm 3.2]
//! ```
//!
//! Sample complexity `O(√n/ε²·log k + k/ε³·log²k + (k/ε)·log(k/ε))`
//! (Theorem 3.1); running time `√n·poly(log k, 1/ε) + poly(k, 1/ε)`.

use crate::adk::ChiSquareTest;
use crate::approx_part::approx_part;
use crate::config::TesterConfig;
use crate::learner::learn;
use crate::sieve::{sieve, SieveOutcome};
use crate::{validate_params, Decision, Tester};
use histo_core::dp::check_close_to_hk;
use histo_core::{HistoError, KHistogram, Partition};
use histo_sampling::oracle::SampleOracle;
use histo_trace::{Stage, Value};
use rand::RngCore;
use std::fmt;

/// A resumable position between pipeline stages of Algorithm 1.
///
/// Each variant carries exactly the state the *remaining* stages need, so
/// a run checkpointed at a boundary and restarted from the corresponding
/// variant replays the rest of the pipeline bit for bit (given the same
/// oracle position and RNG state). `Start` re-runs everything; `SieveDone`
/// only re-runs the offline Check plus the final χ² test.
#[derive(Debug, Clone)]
pub enum PipelinePoint {
    /// Nothing has run yet (a fresh, un-checkpointed run).
    Start,
    /// ApproxPart finished and produced this partition.
    PartitionDone {
        /// The ApproxPart partition of `[n]`.
        partition: Partition,
    },
    /// The learner finished; the partition itself is no longer needed
    /// downstream, only its size.
    HypothesisDone {
        /// Size `K` of the ApproxPart partition.
        partition_size: usize,
        /// The learned hypothesis `D̂`.
        d_hat: KHistogram,
    },
    /// The sieve finished (or was ablated away).
    SieveDone {
        /// Size `K` of the ApproxPart partition.
        partition_size: usize,
        /// The learned hypothesis `D̂`.
        d_hat: KHistogram,
        /// The sieve outcome, including its reject/discard verdicts.
        sieve: SieveOutcome,
    },
}

impl PipelinePoint {
    /// Stable machine name of the boundary, used in checkpoint files and
    /// log lines.
    pub fn name(&self) -> &'static str {
        match self {
            PipelinePoint::Start => "start",
            PipelinePoint::PartitionDone { .. } => "partition",
            PipelinePoint::HypothesisDone { .. } => "hypothesis",
            PipelinePoint::SieveDone { .. } => "sieve",
        }
    }
}

/// Stage toggles for ablation studies (experiment A1): disabling a stage
/// shows what it buys. Defaults to everything enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ablation {
    /// Run the sieving stage (Section 3.2.1). Without it, breakpoint
    /// intervals poison the final χ² test and completeness collapses.
    pub sieve: bool,
    /// Run the Check step (Step 10). Without it, hypotheses far from `H_k`
    /// but close to `D` are accepted and soundness collapses on
    /// many-pieces instances.
    pub check: bool,
    /// Restrict the final test to `A_ε` (the light-element cutoff of
    /// Proposition 3.3). Without it, near-zero hypothesis masses blow up
    /// the statistic's variance.
    pub aeps_cutoff: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Self {
            sieve: true,
            check: true,
            aeps_cutoff: true,
        }
    }
}

/// The paper's tester (Algorithm 1), parameterized by a [`TesterConfig`].
#[derive(Debug, Clone, Default)]
pub struct HistogramTester {
    config: TesterConfig,
    ablation: Ablation,
}

/// A pipeline failure attributed to the stage it occurred in, as returned
/// by [`HistogramTester::try_test_traced`]. The resilient runtime
/// (`crate::robust`) uses the attribution to report *where* a budget ran
/// out or a parameter check failed.
#[derive(Debug, Clone, PartialEq)]
pub struct StageError {
    /// Stable stage name — matches [`Stage::name`] for the five pipeline
    /// stages, or `"params"` for up-front parameter validation.
    pub stage: &'static str,
    /// The underlying error.
    pub error: HistoError,
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage {}: {}", self.stage, self.error)
    }
}

impl std::error::Error for StageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A trace of one run of Algorithm 1, for the experiment harness and
/// debugging.
#[derive(Debug, Clone)]
pub struct TesterTrace {
    /// The final decision.
    pub decision: Decision,
    /// Which step decided: `"sieve"`, `"check"`, `"chi2"`, or `"accept"`.
    pub decided_by: &'static str,
    /// Size `K` of the ApproxPart partition.
    pub partition_size: usize,
    /// The sieve outcome.
    pub sieve: Option<SieveOutcome>,
    /// The learned hypothesis.
    pub hypothesis: Option<KHistogram>,
    /// Samples drawn in total (as counted by the oracle delta).
    pub samples_used: u64,
}

impl HistogramTester {
    /// A tester with the given constants.
    pub fn new(config: TesterConfig) -> Self {
        Self {
            config,
            ablation: Ablation::default(),
        }
    }

    /// Disables stages for ablation studies.
    pub fn with_ablation(mut self, ablation: Ablation) -> Self {
        self.ablation = ablation;
        self
    }

    /// The paper's constants (Theorem 3.1 exactly).
    pub fn paper() -> Self {
        Self::new(TesterConfig::paper())
    }

    /// Calibrated constants for laptop-scale experiments.
    pub fn practical() -> Self {
        Self::new(TesterConfig::practical())
    }

    /// The configuration in use.
    pub fn config(&self) -> &TesterConfig {
        &self.config
    }

    /// Runs the algorithm and returns the full trace.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation errors and oracle failures
    /// (stripping the stage attribution of
    /// [`HistogramTester::try_test_traced`]).
    pub fn test_traced(
        &self,
        oracle: &mut dyn SampleOracle,
        k: usize,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> histo_core::Result<TesterTrace> {
        self.try_test_traced(oracle, k, epsilon, rng)
            .map_err(|e| e.error)
    }

    /// Runs the algorithm with stage-attributed errors: every failure —
    /// parameter validation, a budget-capped oracle refusing a draw
    /// ([`HistoError::OracleExhausted`]), a degenerate statistic — is
    /// tagged with the pipeline stage it occurred in. Identical to
    /// [`HistogramTester::test_traced`] in every other respect (same draw
    /// order, same RNG consumption, same trace events).
    ///
    /// All five subroutines use the oracle's fallible `try_*` draw path
    /// and close their stage spans before propagating an error, so an
    /// attached tracer stays span-balanced across failures.
    ///
    /// # Errors
    ///
    /// Returns a [`StageError`] naming the failing stage.
    pub fn try_test_traced(
        &self,
        oracle: &mut dyn SampleOracle,
        k: usize,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<TesterTrace, StageError> {
        let mut oracle = oracle;
        self.try_test_traced_at(
            &mut oracle,
            k,
            epsilon,
            rng,
            PipelinePoint::Start,
            &mut |_, _| Ok(()),
        )
    }

    /// [`HistogramTester::try_test_traced`] with resumable stage
    /// boundaries — the checkpoint/resume entry point of `histo-recovery`.
    ///
    /// `from` is the boundary to (re)start at: `Start` for a fresh run, or
    /// a deserialized [`PipelinePoint`] to skip the stages that already
    /// ran. `boundary` fires after each stage completes, *before* its
    /// result is consumed downstream, with the point that would restart
    /// the run there and the oracle (so hooks can read its draw position).
    /// A hook error aborts the run attributed to stage `"checkpoint"`.
    ///
    /// With `from = Start` and a no-op hook this is exactly
    /// [`HistogramTester::try_test_traced`]: same draw order, same RNG
    /// consumption, same trace events. On a resumed run,
    /// [`TesterTrace::samples_used`] counts post-resume draws only (the
    /// full run total lives in the trace ledger, which checkpoints carry).
    ///
    /// # Errors
    ///
    /// Returns a [`StageError`] naming the failing stage.
    pub fn try_test_traced_at<O: SampleOracle>(
        &self,
        oracle: &mut O,
        k: usize,
        epsilon: f64,
        rng: &mut dyn RngCore,
        from: PipelinePoint,
        boundary: &mut dyn FnMut(&PipelinePoint, &mut O) -> Result<(), HistoError>,
    ) -> Result<TesterTrace, StageError> {
        let at = |stage: &'static str| move |error: HistoError| StageError { stage, error };
        let n = oracle.n();
        validate_params(n, k, epsilon).map_err(at("params"))?;
        let start = oracle.samples_drawn();
        let cfg = &self.config;

        let mut cur = from;
        loop {
            cur = match cur {
                // Steps 1–3: ApproxPart.
                PipelinePoint::Start => {
                    let b = cfg.b(k, epsilon).max(1.0);
                    let ap_samples = cfg.approx_part_samples(b);
                    let ap = approx_part(&mut *oracle, b, ap_samples, rng)
                        .map_err(at(Stage::ApproxPart.name()))?;
                    let next = PipelinePoint::PartitionDone {
                        partition: ap.partition,
                    };
                    boundary(&next, oracle).map_err(at("checkpoint"))?;
                    next
                }
                // Step 4: Learner.
                PipelinePoint::PartitionDone { partition } => {
                    let partition_size = partition.len();
                    let eps_learn = epsilon / cfg.learner_eps_divisor;
                    let m_learn = cfg.learner_samples(partition_size, eps_learn);
                    let d_hat = learn(&mut *oracle, &partition, m_learn, rng)
                        .map_err(at(Stage::Learner.name()))?;
                    let next = PipelinePoint::HypothesisDone {
                        partition_size,
                        d_hat,
                    };
                    boundary(&next, oracle).map_err(at("checkpoint"))?;
                    next
                }
                // Steps 6–8: Sieve (skippable for ablation).
                PipelinePoint::HypothesisDone {
                    partition_size,
                    d_hat,
                } => {
                    let sieve_out = if self.ablation.sieve {
                        sieve(&mut *oracle, &d_hat, k, epsilon, cfg, rng)
                            .map_err(at(Stage::Sieve.name()))?
                    } else {
                        SieveOutcome {
                            rejected: false,
                            discarded: vec![],
                            rounds_used: 0,
                            early_accept: false,
                        }
                    };
                    let next = PipelinePoint::SieveDone {
                        partition_size,
                        d_hat,
                        sieve: sieve_out,
                    };
                    boundary(&next, oracle).map_err(at("checkpoint"))?;
                    next
                }
                // Steps 10–13: Check + final χ² test. Draws from here on
                // happen after the last boundary, so there is nothing left
                // to checkpoint — the arm returns instead of looping.
                PipelinePoint::SieveDone {
                    partition_size,
                    d_hat,
                    sieve: sieve_out,
                } => {
                    if sieve_out.rejected {
                        oracle.trace_counter("decided_by", Value::Str("sieve"));
                        oracle.trace_counter("accepted", Value::Bool(false));
                        return Ok(TesterTrace {
                            decision: Decision::Reject,
                            decided_by: "sieve",
                            partition_size,
                            sieve: Some(sieve_out),
                            hypothesis: Some(d_hat),
                            samples_used: oracle.samples_drawn() - start,
                        });
                    }
                    let surviving = sieve_out.surviving(partition_size);

                    // Step 10: Check — some D* ∈ H_k must be close to D̂ on
                    // G. Draws no samples, but runs inside a span so the
                    // trace carries its wall time alongside the sampling
                    // stages.
                    let mut counted = vec![false; partition_size];
                    for &j in &surviving {
                        counted[j] = true;
                    }
                    oracle.trace_enter(Stage::Check);
                    let check_res = if self.ablation.check {
                        check_close_to_hk(&d_hat, &counted, k, epsilon / cfg.check_divisor)
                    } else {
                        Ok(true)
                    };
                    if let Ok(ok) = &check_res {
                        oracle.trace_counter("check_ok", Value::Bool(*ok));
                    }
                    oracle.trace_exit();
                    if !check_res.map_err(at(Stage::Check.name()))? {
                        oracle.trace_counter("decided_by", Value::Str("check"));
                        oracle.trace_counter("accepted", Value::Bool(false));
                        return Ok(TesterTrace {
                            decision: Decision::Reject,
                            decided_by: "check",
                            partition_size,
                            sieve: Some(sieve_out),
                            hypothesis: Some(d_hat),
                            samples_used: oracle.samples_drawn() - start,
                        });
                    }

                    // Steps 12–13: final χ² test on the surviving domain.
                    let eps_prime = cfg.final_eps_factor * epsilon;
                    let mut cfg_final = *cfg;
                    if !self.ablation.aeps_cutoff {
                        cfg_final.aeps_fraction = 0.0;
                    }
                    let chi2 =
                        ChiSquareTest::restricted(d_hat.clone(), surviving, eps_prime, &cfg_final)
                            .map_err(at(Stage::AdkTest.name()))?;
                    let decision = chi2
                        .try_run(&mut *oracle, rng)
                        .map_err(at(Stage::AdkTest.name()))?;
                    oracle.trace_counter(
                        "decided_by",
                        Value::Str(if decision.accepted() {
                            "accept"
                        } else {
                            "chi2"
                        }),
                    );
                    oracle.trace_counter("accepted", Value::Bool(decision.accepted()));
                    return Ok(TesterTrace {
                        decided_by: if decision.accepted() {
                            "accept"
                        } else {
                            "chi2"
                        },
                        decision,
                        partition_size,
                        sieve: Some(sieve_out),
                        hypothesis: Some(d_hat),
                        samples_used: oracle.samples_drawn() - start,
                    });
                }
            };
        }
    }
}

impl Tester for HistogramTester {
    fn name(&self) -> &'static str {
        "canonne-histogram-tester"
    }

    fn test(
        &self,
        oracle: &mut dyn SampleOracle,
        k: usize,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> histo_core::Result<Decision> {
        Ok(self.test_traced(oracle, k, epsilon, rng)?.decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histo_core::Distribution;
    use histo_sampling::generators::{
        amplitude_for_certified_distance, random_k_histogram, sawtooth_perturbation, staircase,
    };
    use histo_sampling::DistOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn acceptance_rate(d: &Distribution, k: usize, eps: f64, trials: usize, seed: u64) -> f64 {
        let tester = HistogramTester::practical();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut accepts = 0usize;
        for _ in 0..trials {
            let mut o = DistOracle::new(d.clone()).with_fast_poissonization();
            if tester.test(&mut o, k, eps, &mut rng).unwrap().accepted() {
                accepts += 1;
            }
        }
        accepts as f64 / trials as f64
    }

    #[test]
    fn accepts_uniform_as_one_histogram() {
        let d = Distribution::uniform(500).unwrap();
        let rate = acceptance_rate(&d, 1, 0.3, 20, 61);
        assert!(rate >= 0.8, "acceptance rate {rate}");
    }

    #[test]
    fn accepts_staircase_member() {
        let d = staircase(600, 4).unwrap().to_distribution().unwrap();
        let rate = acceptance_rate(&d, 4, 0.3, 20, 67);
        assert!(rate >= 0.75, "acceptance rate {rate}");
    }

    #[test]
    fn accepts_random_histograms() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..3 {
            let h = random_k_histogram(400, 5, &mut rng).unwrap();
            let d = h.to_distribution().unwrap();
            let rate = acceptance_rate(&d, 5, 0.35, 12, 73);
            assert!(rate >= 0.7, "acceptance rate {rate}");
        }
    }

    #[test]
    fn rejects_certified_far_instance() {
        let base = staircase(600, 3).unwrap();
        let eps = 0.3;
        let c = amplitude_for_certified_distance(&base, 3, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(79);
        let inst = sawtooth_perturbation(&base, 3, c.min(0.95), &mut rng).unwrap();
        assert!(inst.tv_to_hk_lower >= eps - 1e-9);
        let rate = acceptance_rate(&inst.dist, 3, eps, 20, 83);
        assert!(
            rate <= 0.25,
            "acceptance rate {rate} on a certified far instance"
        );
    }

    #[test]
    fn rejects_zigzag_far_from_one_histogram() {
        // Alternating heavy/light: far from uniform = H_1.
        let n = 400;
        let d = Distribution::from_weights(
            (0..n).map(|i| if i % 2 == 0 { 1.7 } else { 0.3 }).collect(),
        )
        .unwrap();
        let rate = acceptance_rate(&d, 1, 0.3, 20, 89);
        assert!(rate <= 0.25, "acceptance rate {rate}");
    }

    #[test]
    fn trace_reports_sample_usage_and_stage() {
        let d = Distribution::uniform(300).unwrap();
        let tester = HistogramTester::practical();
        let mut rng = StdRng::seed_from_u64(97);
        let mut o = DistOracle::new(d).with_fast_poissonization();
        let trace = tester.test_traced(&mut o, 2, 0.4, &mut rng).unwrap();
        assert!(trace.samples_used > 0);
        assert_eq!(trace.samples_used, o.samples_drawn());
        assert!(trace.partition_size >= 1);
        assert!(["sieve", "check", "chi2", "accept"].contains(&trace.decided_by));
        assert!(trace.hypothesis.is_some());
    }

    #[test]
    fn scoped_run_ledger_sums_to_samples_drawn() {
        use histo_sampling::ScopedOracle;
        use histo_trace::{MemorySink, Stage, TraceEvent, Tracer};

        let d = Distribution::uniform(300).unwrap();
        let tester = HistogramTester::practical();
        let mut rng = StdRng::seed_from_u64(97);
        let mut inner = DistOracle::new(d).with_fast_poissonization();
        let sink = MemorySink::new();
        let handle = sink.handle();
        let mut o =
            ScopedOracle::with_tracer(&mut inner, Tracer::new(Box::new(sink)).without_timing());
        let trace = tester.test_traced(&mut o, 2, 0.4, &mut rng).unwrap();
        let total = o.samples_drawn();
        let ledger = o.finish();

        // The defining invariant: the per-stage ledger partitions the
        // oracle's total draw count, with nothing unattributed — every
        // draw of Algorithm 1 happens inside a stage span.
        assert_eq!(ledger.total(), total);
        assert_eq!(trace.samples_used, total);
        assert_eq!(ledger.unattributed(), 0);
        let sum: u64 = ledger.entries().iter().map(|(_, s)| s).sum();
        assert_eq!(sum, total);
        assert!(ledger.stage_total(Stage::ApproxPart) > 0);
        assert!(ledger.stage_total(Stage::Learner) > 0);
        assert!(ledger.stage_total(Stage::Sieve) > 0);

        // The emitted stream agrees with the ledger and is span-balanced.
        let events = handle.events();
        let from_exits: u64 = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::StageExit { samples, .. } => Some(*samples),
                _ => None,
            })
            .sum();
        assert_eq!(from_exits, total);
        let mut depth = 0i64;
        for e in &events {
            match e {
                TraceEvent::StageEnter { .. } => depth += 1,
                TraceEvent::StageExit { .. } => {
                    depth -= 1;
                    assert!(depth >= 0, "exit without matching enter");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced spans in emitted stream");
    }

    #[test]
    fn invalid_parameters_error() {
        let d = Distribution::uniform(10).unwrap();
        let tester = HistogramTester::practical();
        let mut rng = StdRng::seed_from_u64(101);
        let mut o = DistOracle::new(d);
        assert!(tester.test(&mut o, 0, 0.5, &mut rng).is_err());
        assert!(tester.test(&mut o, 1, 2.0, &mut rng).is_err());
        assert!(tester.test(&mut o, 11, 0.5, &mut rng).is_err());
    }

    #[test]
    fn resume_from_any_boundary_reproduces_the_run() {
        use histo_sampling::SharedRng;
        let d = Distribution::uniform(300).unwrap();
        let tester = HistogramTester::practical();

        // Reference run with a hook that snapshots (point, oracle, RNG
        // state) at every stage boundary — the state a checkpoint stores.
        let mut rng = SharedRng::seed_from(4242);
        let probe = rng.clone();
        let mut o_ref = DistOracle::new(d.clone()).with_fast_poissonization();
        let mut snapshots: Vec<(PipelinePoint, DistOracle, [u64; 4])> = Vec::new();
        let reference = tester
            .try_test_traced_at(
                &mut o_ref,
                2,
                0.4,
                &mut rng,
                PipelinePoint::Start,
                &mut |pt, o| {
                    snapshots.push((pt.clone(), o.clone(), probe.state()));
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(snapshots.len(), 3, "partition, hypothesis, sieve");

        // Hooks must not perturb the run: a hook-free run from the same
        // seed consumes the same draws and decides the same way.
        let mut rng2 = SharedRng::seed_from(4242);
        let mut o2 = DistOracle::new(d).with_fast_poissonization();
        let plain = tester
            .test_traced(&mut o2, 2, 0.4, &mut rng2)
            .unwrap();
        assert_eq!(plain.decision, reference.decision);
        assert_eq!(o2.samples_drawn(), o_ref.samples_drawn());

        // Restarting from every boundary replays the tail exactly.
        for (pt, mut o, rng_state) in snapshots {
            let name = pt.name();
            let mut rng = SharedRng::from_state(rng_state);
            let resumed = tester
                .try_test_traced_at(&mut o, 2, 0.4, &mut rng, pt, &mut |_, _| Ok(()))
                .unwrap_or_else(|e| panic!("resume from {name}: {e}"));
            assert_eq!(resumed.decision, reference.decision, "from {name}");
            assert_eq!(resumed.decided_by, reference.decided_by, "from {name}");
            assert_eq!(o.samples_drawn(), o_ref.samples_drawn(), "from {name}");
            assert_eq!(rng.state(), probe.state(), "from {name}");
        }
    }

    #[test]
    fn boundary_hook_error_attributes_to_checkpoint_stage() {
        let d = Distribution::uniform(300).unwrap();
        let tester = HistogramTester::practical();
        let mut rng = StdRng::seed_from_u64(4243);
        let mut o = DistOracle::new(d).with_fast_poissonization();
        let err = tester
            .try_test_traced_at(
                &mut o,
                2,
                0.4,
                &mut rng,
                PipelinePoint::Start,
                &mut |_, _| {
                    Err(HistoError::InvalidParameter {
                        name: "checkpoint",
                        reason: "disk full".into(),
                    })
                },
            )
            .unwrap_err();
        assert_eq!(err.stage, "checkpoint");
    }

    #[test]
    fn k_larger_than_pieces_still_accepts() {
        // Testing H_6 on a 3-histogram must accept (H_3 ⊂ H_6).
        let d = staircase(600, 3).unwrap().to_distribution().unwrap();
        let rate = acceptance_rate(&d, 6, 0.3, 15, 103);
        assert!(rate >= 0.75, "acceptance rate {rate}");
    }
}

//! End-to-end smoke tests for the `fewbins` binary: every exit code in
//! the documented scheme (`0` ok, `1` internal/crash, `2` usage, `3` bad
//! input incl. bad checkpoints, `4` samples exhausted, `5` inconclusive,
//! `6` deadline exceeded) is reachable, distinct, and paired with a
//! useful message.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fewbins(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fewbins"))
        .args(args)
        .output()
        .expect("failed to spawn fewbins")
}

/// Like [`fewbins`], but with timing stripped from trace output so two
/// runs of the same logical stream are byte-comparable.
fn fewbins_notiming(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fewbins"))
        .args(args)
        .env("FEWBINS_TRACE_NO_TIMING", "1")
        .output()
        .expect("failed to spawn fewbins")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("fewbins was killed by a signal")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Writes a unique temp file for one test; `name` keeps concurrent tests
/// from colliding.
fn write_tmp(name: &str, contents: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("fewbins_smoke_{}_{name}.txt", std::process::id()));
    std::fs::write(&p, contents).unwrap();
    p
}

/// A dataset of 60 samples spread over [0..30).
fn dataset(name: &str) -> PathBuf {
    let samples: Vec<String> = (0..60).map(|i| (i % 30).to_string()).collect();
    write_tmp(name, &samples.join(" "))
}

#[test]
fn help_exits_zero_and_documents_exit_codes() {
    let out = fewbins(&["--help"]);
    assert_eq!(code(&out), 0);
    let usage = stderr(&out);
    assert!(usage.contains("exit codes"), "{usage}");
    assert!(usage.contains("--faults"), "{usage}");
}

#[test]
fn usage_errors_exit_two() {
    let data = dataset("usage");
    let data = data.to_str().unwrap();
    for argv in [
        vec!["frobnicate"],
        vec!["test", data],                        // missing --k
        vec!["test", "--k", "2", "--bogus", data], // unknown flag
        vec!["test", "--k", "2", "--retries", "0", data],
        vec!["test", "--k", "2", "--faults", "bogus=1", data],
        vec!["test", "--k", "2", "--max-samples", "many", data],
    ] {
        let out = fewbins(&argv);
        assert_eq!(code(&out), 2, "argv {argv:?}: {}", stderr(&out));
        assert!(stderr(&out).contains("fewbins:"), "argv {argv:?}");
    }
}

#[test]
fn input_errors_exit_three() {
    let bad = write_tmp("badtok", "0 1 oops 2");
    let out = fewbins(&["test", "--k", "2", bad.to_str().unwrap()]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    assert!(stderr(&out).contains("oops"), "{}", stderr(&out));

    let out = fewbins(&["test", "--k", "2", "/nonexistent/fewbins_smoke.txt"]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));

    let big = write_tmp("domain", "0 1 99");
    let out = fewbins(&["test", "--n", "10", "--k", "2", big.to_str().unwrap()]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
}

#[test]
fn exhausted_dataset_exits_four() {
    // 60 samples against a budget of hundreds of thousands: the
    // no-resample replay oracle runs dry mid-pipeline and the typed
    // exhaustion error must surface as exit 4, not a panic (exit 1).
    let data = dataset("exhaust");
    let out = fewbins(&[
        "test",
        "--n",
        "30",
        "--k",
        "2",
        "--no-resample",
        data.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 4, "{}", stderr(&out));
    assert!(stderr(&out).contains("exhausted"), "{}", stderr(&out));
}

#[test]
fn starved_budget_exits_five_and_reports_inconclusive() {
    // --max-samples far below the Theorem 1.1 requirement: the resilient
    // runner must come back INCONCLUSIVE (stdout) with exit code 5.
    let data = dataset("starved");
    let out = fewbins(&[
        "test",
        "--n",
        "30",
        "--k",
        "2",
        "--max-samples",
        "40",
        data.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 5, "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("INCONCLUSIVE"), "{text}");
    assert!(text.contains("approx_part"), "{text}");
}

#[test]
fn faulty_traced_run_emits_trace_and_fault_summary() {
    // All resilience layers at once: faults + budget + tracing. Still
    // exit 5 (inconclusive), with the fault summary on stderr and a
    // non-empty JSONL trace on disk.
    let data = dataset("faulty");
    let trace =
        std::env::temp_dir().join(format!("fewbins_smoke_{}_trace.jsonl", std::process::id()));
    let out = fewbins(&[
        "test",
        "--n",
        "30",
        "--k",
        "2",
        "--faults",
        "eta=0.5,adv=point:0,seed=1",
        "--max-samples",
        "40",
        "--trace",
        trace.to_str().unwrap(),
        data.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 5, "{}", stderr(&out));
    assert!(stderr(&out).contains("faults injected"), "{}", stderr(&out));
    let trace_bytes = std::fs::read(&trace).expect("trace file written");
    assert!(!trace_bytes.is_empty());
}

#[test]
fn traced_run_reports_wall_time_and_metrics() {
    // A clean traced run: the stderr ledger summary must carry per-stage
    // wall time next to the sample counts, and `--metrics` must drop a
    // Prometheus exposition file alongside the trace.
    let data = dataset("walltime");
    let trace = std::env::temp_dir().join(format!(
        "fewbins_smoke_{}_wall_trace.jsonl",
        std::process::id()
    ));
    let metrics = std::env::temp_dir().join(format!(
        "fewbins_smoke_{}_wall_metrics.prom",
        std::process::id()
    ));
    let out = fewbins(&[
        "test",
        "--n",
        "30",
        "--k",
        "2",
        "--trace",
        trace.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
        data.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("samples and wall time by stage"), "{err}");
    assert!(err.contains(" us\n"), "per-stage wall column missing: {err}");
    assert!(err.contains("us wall)"), "root wall footer missing: {err}");
    assert!(err.contains("metrics written to"), "{err}");
    let prom = std::fs::read_to_string(&metrics).expect("metrics file written");
    assert!(prom.contains("# TYPE fewbins_draws_total counter"), "{prom}");
    assert!(prom.contains("fewbins_stage_samples_total{stage="), "{prom}");
    assert!(prom.contains("fewbins_wall_microseconds_total"), "{prom}");
}

#[test]
fn report_subcommand_summarizes_a_trace() {
    // `fewbins report` must round-trip a trace produced by `--trace`:
    // human table by default, one JSON object with `--json`, and the
    // theory columns only when (n, k) are supplied.
    let data = dataset("report");
    let trace = std::env::temp_dir().join(format!(
        "fewbins_smoke_{}_report_trace.jsonl",
        std::process::id()
    ));
    let out = fewbins(&[
        "test",
        "--n",
        "30",
        "--k",
        "2",
        "--trace",
        trace.to_str().unwrap(),
        data.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));

    let out = fewbins(&["report", trace.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let table = stdout(&out);
    assert!(table.contains("fewbins report"), "{table}");
    assert!(table.contains("wall_us"), "{table}");
    assert!(table.contains("(total)"), "{table}");

    let out = fewbins(&[
        "report",
        "--json",
        "--n",
        "30",
        "--k",
        "2",
        "--eps",
        "0.3",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let json = stdout(&out);
    assert!(json.contains("\"total_samples\":"), "{json}");
    assert!(json.contains("\"stages\":["), "{json}");
    assert!(json.contains("\"theory_term\":"), "{json}");

    // No trace files is a usage error; a malformed trace is bad input.
    assert_eq!(code(&fewbins(&["report"])), 2);
    let garbage = write_tmp("report_garbage", "not json\n");
    let out = fewbins(&["report", garbage.to_str().unwrap()]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
}

#[test]
fn crash_then_resume_reproduces_the_uninterrupted_run() {
    // The tentpole guarantee, driven through the real binary: a run
    // killed by an injected crash and resumed from its checkpoint must
    // reproduce the uninterrupted run's decision line exactly, and the
    // two trace segments must stitch back to the uninterrupted trace
    // byte for byte.
    let data = dataset("recovery");
    let data = data.to_str().unwrap();
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let full_trace = tmp.join(format!("fewbins_smoke_{pid}_full.jsonl"));
    let full_ckpt = tmp.join(format!("fewbins_smoke_{pid}_full.ckpt"));
    let seg1 = tmp.join(format!("fewbins_smoke_{pid}_seg1.jsonl"));
    let seg2 = tmp.join(format!("fewbins_smoke_{pid}_seg2.jsonl"));
    let ckpt = tmp.join(format!("fewbins_smoke_{pid}_crash.ckpt"));
    let stitched = tmp.join(format!("fewbins_smoke_{pid}_stitched.jsonl"));

    // Uninterrupted baseline. `--faults none` keeps the (transparent)
    // fault layer and its trace counters in place, so the crashed+resumed
    // pair below emits the identical stream shape.
    let base = fewbins_notiming(&[
        "test", "--n", "30", "--k", "2", "--faults", "none",
        "--checkpoint", full_ckpt.to_str().unwrap(),
        "--trace", full_trace.to_str().unwrap(),
        data,
    ]);
    assert_eq!(code(&base), 0, "{}", stderr(&base));

    // The same run killed mid-flight: exit 1 with a resume hint.
    let crash = fewbins_notiming(&[
        "test", "--n", "30", "--k", "2", "--faults", "crash=400000",
        "--checkpoint", ckpt.to_str().unwrap(),
        "--trace", seg1.to_str().unwrap(),
        data,
    ]);
    assert_eq!(code(&crash), 1, "{}", stderr(&crash));
    assert!(stderr(&crash).contains("simulated crash"), "{}", stderr(&crash));
    assert!(stderr(&crash).contains("--resume"), "{}", stderr(&crash));

    // Resume from the crash checkpoint (same --faults spec; the crash
    // trigger is stripped on resume): identical decision line.
    let resume = fewbins_notiming(&[
        "test", "--n", "30", "--k", "2", "--faults", "crash=400000",
        "--resume", "--checkpoint", ckpt.to_str().unwrap(),
        "--trace", seg2.to_str().unwrap(),
        data,
    ]);
    assert_eq!(code(&resume), 0, "{}", stderr(&resume));
    assert!(stderr(&resume).contains("resuming from"), "{}", stderr(&resume));
    assert_eq!(stdout(&resume), stdout(&base));

    // Stitch the two segments at their checkpoint seam: byte-identical
    // to the uninterrupted trace.
    let stitch = fewbins(&[
        "report", "--stitch",
        "--stitch-out", stitched.to_str().unwrap(),
        seg1.to_str().unwrap(),
        seg2.to_str().unwrap(),
    ]);
    assert_eq!(code(&stitch), 0, "{}", stderr(&stitch));
    let stitched_bytes = std::fs::read(&stitched).expect("stitched trace written");
    let full_bytes = std::fs::read(&full_trace).expect("baseline trace written");
    assert_eq!(stitched_bytes, full_bytes, "stitched trace differs from uninterrupted run");
}

#[test]
fn bad_checkpoints_exit_three_with_typed_messages() {
    // Every checkpoint failure mode must refuse with exit 3 and a typed
    // message — never a panic (exit 1), never a silent from-scratch
    // restart (exit 0 with a full re-run).
    let data = dataset("badckpt");
    let data = data.to_str().unwrap();
    let ckpt = std::env::temp_dir().join(format!("fewbins_smoke_{}_bad.ckpt", std::process::id()));

    // A crashed run leaves a genuine checkpoint behind to damage.
    let crash = fewbins(&[
        "test", "--n", "30", "--k", "2", "--faults", "crash=400000",
        "--checkpoint", ckpt.to_str().unwrap(),
        data,
    ]);
    assert_eq!(code(&crash), 1, "{}", stderr(&crash));
    let good = std::fs::read_to_string(&ckpt).expect("crash left a checkpoint");

    let resume_with = |name: &str, contents: &str, k: &str| {
        let bad = write_tmp(name, contents);
        fewbins(&[
            "test", "--n", "30", "--k", k,
            "--resume", "--checkpoint", bad.to_str().unwrap(),
            data,
        ])
    };

    // Corrupt: payload edited, checksum stale.
    let out = resume_with("ckpt_corrupt", &good.replace("\nid ", "\nid 9"), "2");
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    assert!(stderr(&out).contains("corrupt"), "{}", stderr(&out));
    assert!(stderr(&out).contains("crc mismatch"), "{}", stderr(&out));

    // Truncated: the `end` terminator never made it to disk.
    let cut: String = good.lines().take(5).map(|l| format!("{l}\n")).collect();
    let out = resume_with("ckpt_trunc", &cut, "2");
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    assert!(stderr(&out).contains("truncated"), "{}", stderr(&out));

    // Version mismatch: written by a different format version.
    let out = resume_with(
        "ckpt_version",
        &good.replace("fewbins-checkpoint v1", "fewbins-checkpoint v9"),
        "2",
    );
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    assert!(stderr(&out).contains("version mismatch"), "{}", stderr(&out));

    // Params mismatch: a valid checkpoint from a different run (--k 3
    // here vs --k 2 at save time) must refuse to seed this one.
    let out = resume_with("ckpt_params", &good, "3");
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    assert!(stderr(&out).contains("different run"), "{}", stderr(&out));
}

#[test]
fn deadline_zero_exits_six_and_reports_deadline_exceeded() {
    // A whole-run deadline of 0 ms must trip on the first supervised
    // draw: structured INCONCLUSIVE on stdout, dedicated exit code 6.
    let data = dataset("deadline");
    let out = fewbins(&[
        "test", "--n", "30", "--k", "2", "--deadline-ms", "0",
        data.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 6, "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("INCONCLUSIVE"), "{text}");
    assert!(text.contains("deadline exceeded"), "{text}");
}

#[test]
fn crashed_trace_segment_is_diagnosed_resumable() {
    // `fewbins report` on a crashed run's lone segment must say the
    // truncation is resumable (a checkpoint was saved) and point at
    // --stitch — not call the stream corrupt.
    let data = dataset("resumable");
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let ckpt = tmp.join(format!("fewbins_smoke_{pid}_resumable.ckpt"));
    let seg = tmp.join(format!("fewbins_smoke_{pid}_resumable.jsonl"));
    let crash = fewbins(&[
        "test", "--n", "30", "--k", "2", "--faults", "crash=400000",
        "--checkpoint", ckpt.to_str().unwrap(),
        "--trace", seg.to_str().unwrap(),
        data.to_str().unwrap(),
    ]);
    assert_eq!(code(&crash), 1, "{}", stderr(&crash));

    let out = fewbins(&["report", seg.to_str().unwrap()]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("resumable"), "{err}");
    assert!(err.contains("--stitch"), "{err}");
    assert!(err.contains("checkpoint id"), "{err}");
}

#[test]
fn sketch_happy_path_exits_zero() {
    let data = dataset("sketch");
    let out = fewbins(&[
        "sketch",
        "--n",
        "30",
        "--k",
        "2",
        "--eps",
        "0.3",
        data.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(stdout(&out).contains("sketch"), "{}", stdout(&out));
}

#[test]
fn certify_happy_path_exits_zero() {
    let pmf = write_tmp("pmf", "1 1 1 1 1 1 1 1");
    let out = fewbins(&["certify", "--k", "1", pmf.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(stdout(&out).contains("d_TV"), "{}", stdout(&out));
}

//! End-to-end integration tests: the full Algorithm 1 pipeline against
//! generated workloads, exercised through the public facade API only.

use few_bins::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn acceptance_rate(d: &Distribution, k: usize, eps: f64, trials: usize, seed: u64) -> f64 {
    let tester = HistogramTester::practical();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepts = 0;
    for _ in 0..trials {
        let mut o = DistOracle::new(d.clone()).with_fast_poissonization();
        if tester.test(&mut o, k, eps, &mut rng).unwrap().accepted() {
            accepts += 1;
        }
    }
    accepts as f64 / trials as f64
}

#[test]
fn completeness_across_shapes() {
    let mut rng = StdRng::seed_from_u64(1);
    // Uniform = 1-histogram.
    let u = Distribution::uniform(800).unwrap();
    assert!(acceptance_rate(&u, 1, 0.3, 15, 2) >= 0.8);
    // Staircases.
    for k in [2usize, 4] {
        let d = staircase(900, k).unwrap().to_distribution().unwrap();
        assert!(
            acceptance_rate(&d, k, 0.3, 15, 3 + k as u64) >= 0.75,
            "k = {k}"
        );
    }
    // A random histogram, tested with slack pieces.
    let d = random_k_histogram(700, 3, &mut rng)
        .unwrap()
        .to_distribution()
        .unwrap();
    assert!(acceptance_rate(&d, 5, 0.3, 15, 9) >= 0.75);
}

#[test]
fn soundness_on_certified_instances() {
    let mut rng = StdRng::seed_from_u64(11);
    let base = staircase(900, 4).unwrap();
    let eps = 0.25;
    let amp = histo_sampling::generators::amplitude_for_certified_distance(&base, 4, eps)
        .unwrap()
        .min(0.9);
    let inst = sawtooth_perturbation(&base, 4, amp, &mut rng).unwrap();
    assert!(inst.tv_to_hk_lower >= eps - 1e-9, "instance not certified");
    assert!(acceptance_rate(&inst.dist, 4, eps, 15, 13) <= 0.25);
}

#[test]
fn soundness_on_smooth_decay() {
    // Geometric decay is far from any 2-histogram at moderate distance.
    let d = geometric(600, 0.995).unwrap();
    let bounds = distance_to_hk_bounds(&d, 2).unwrap();
    assert!(
        bounds.lower > 0.1,
        "sanity: lower bound {:.3}",
        bounds.lower
    );
    let eps = bounds.lower.min(0.3) * 0.9;
    assert!(acceptance_rate(&d, 2, eps, 15, 17) <= 0.3);
}

#[test]
fn measured_samples_are_sublinear_for_large_n() {
    // At fixed k and eps, the tester's measured draw count must grow far
    // slower than the offline Theta(n/eps^2) baseline as n scales 16x.
    let tester = HistogramTester::practical();
    let mut rng = StdRng::seed_from_u64(19);
    let mut measured = vec![];
    for &n in &[2_000usize, 32_000] {
        let d = staircase(n, 2).unwrap().to_distribution().unwrap();
        let mut o = DistOracle::new(d).with_fast_poissonization();
        let tr = tester.test_traced(&mut o, 2, 0.3, &mut rng).unwrap();
        assert!(tr.decision.accepted());
        measured.push(tr.samples_used as f64);
    }
    let growth = measured[1] / measured[0];
    // sqrt(16) = 4 on the n-dependent part; the k-dependent part is flat,
    // so total growth must be well under the linear factor 16.
    assert!(growth < 8.0, "sample growth {growth:.1}x for 16x domain");
}

#[test]
fn trace_stages_are_consistent() {
    let d = staircase(500, 3).unwrap().to_distribution().unwrap();
    let tester = HistogramTester::practical();
    let mut rng = StdRng::seed_from_u64(23);
    let mut o = DistOracle::new(d).with_fast_poissonization();
    let tr = tester.test_traced(&mut o, 3, 0.3, &mut rng).unwrap();
    let sieve = tr.sieve.expect("sieve ran");
    assert!(!sieve.rejected);
    let hyp = tr.hypothesis.expect("hypothesis learned");
    assert_eq!(hyp.num_pieces(), tr.partition_size);
    // Surviving + discarded = all intervals.
    assert_eq!(
        sieve.surviving(tr.partition_size).len() + sieve.discarded.len(),
        tr.partition_size
    );
}

#[test]
fn model_selection_end_to_end() {
    // A 4-histogram with well-separated levels: the doubling search should
    // select a small k that is genuinely epsilon-adequate, and reject k=1.
    let d = staircase(1_000, 4).unwrap().to_distribution().unwrap();
    let tester = HistogramTester::practical();
    let mut rng = StdRng::seed_from_u64(29);
    let mut o = DistOracle::new(d.clone()).with_fast_poissonization();
    let sel = doubling_search(&tester, &mut o, 0.12, 64, 3, true, &mut rng).unwrap();
    let k_hat = sel.selected_k.expect("selection succeeds");
    assert!(k_hat <= 8, "selected {k_hat}");
    let bounds = distance_to_hk_bounds(&d, k_hat).unwrap();
    assert!(bounds.lower <= 0.12 + 1e-9);
    // k = 1 must have been rejected on the way.
    assert!(sel.trials.iter().any(|&(k, acc)| k == 1 && !acc));
}

#[test]
fn paper_config_is_usable_at_small_scale() {
    // The paper's constants demand enormous budgets; verify the structure
    // still runs end-to-end on a tiny instance (completeness only, one
    // trial — this is a smoke test for the constant plumbing).
    let d = Distribution::uniform(50).unwrap();
    let tester = HistogramTester::paper();
    let mut rng = StdRng::seed_from_u64(31);
    let mut o = DistOracle::new(d).with_fast_poissonization();
    let decision = tester.test(&mut o, 1, 0.5, &mut rng).unwrap();
    assert!(decision.accepted());
    // The paper budget is enormous even here.
    assert!(o.samples_drawn() > 100_000);
}

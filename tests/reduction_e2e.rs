//! Integration test of the Section 4.2 reduction with the *actual* paper
//! tester in the loop: the lifted tester must solve SuppSize_m.

use few_bins::lowerbounds::{LiftedTester, SuppSizeInstance};
use few_bins::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn lifted_histogram_tester_solves_support_size() {
    // Small-but-real scale: m = 12 => k = 9, n = 70m = 840.
    let m = 12;
    let n = 70 * m;
    let tester = HistogramTester::practical();
    let lifted = LiftedTester::new(&tester, m, n, 3).unwrap();
    assert_eq!(lifted.k, 2 * (m / 3) + 1);

    let mut rng = StdRng::seed_from_u64(101);
    let low = SuppSizeInstance::low(m).unwrap();
    let high = SuppSizeInstance::high(m).unwrap();

    let trials = 6;
    let mut low_correct = 0;
    let mut high_correct = 0;
    for _ in 0..trials {
        if lifted.decide(&low, &mut rng).unwrap() {
            low_correct += 1;
        }
        if !lifted.decide(&high, &mut rng).unwrap() {
            high_correct += 1;
        }
    }
    assert!(
        low_correct >= trials - 1,
        "low-support instances accepted only {low_correct}/{trials}"
    );
    assert!(
        high_correct >= trials - 1,
        "high-support instances rejected only {high_correct}/{trials}"
    );
}

#[test]
fn lifted_tester_on_randomized_instances() {
    let m = 12;
    let n = 70 * m;
    let tester = HistogramTester::practical();
    let lifted = LiftedTester::new(&tester, m, n, 3).unwrap();
    let mut rng = StdRng::seed_from_u64(103);
    let mut correct = 0;
    let trials = 8;
    for t in 0..trials {
        let low = t % 2 == 0;
        let inst = SuppSizeInstance::random(m, low, &mut rng).unwrap();
        if lifted.decide(&inst, &mut rng).unwrap() == low {
            correct += 1;
        }
    }
    assert!(correct >= trials - 1, "correct on {correct}/{trials}");
}

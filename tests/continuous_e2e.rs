//! Integration test of the Section 2 continuous-domain extension: the full
//! tester running on gridded continuous data.

use few_bins::prelude::*;
use few_bins::sampling::continuous::{
    gridded_pmf, GaussianMixture, GriddedOracle, PiecewiseDensity,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn tester_accepts_aligned_piecewise_density() {
    // 3-piece density aligned to a 64-cell grid: the gridded distribution
    // is a genuine 3-histogram.
    let density = PiecewiseDensity::new(vec![0.25, 0.75, 1.0], vec![0.5, 0.2, 0.3]).unwrap();
    let truth = gridded_pmf(&density, 64).unwrap();
    assert!(truth.is_k_histogram(3));

    let tester = HistogramTester::practical();
    let mut rng = StdRng::seed_from_u64(71);
    let mut accepts = 0;
    let trials = 10;
    for _ in 0..trials {
        let mut oracle = GriddedOracle::new(&density, 64).unwrap();
        if tester
            .test(&mut oracle, 3, 0.35, &mut rng)
            .unwrap()
            .accepted()
        {
            accepts += 1;
        }
    }
    assert!(accepts >= trials - 2, "accepted {accepts}/{trials}");
}

#[test]
fn tester_rejects_smooth_bimodal_density() {
    // A bimodal Gaussian mixture is far from any small histogram on a fine
    // grid.
    let density = GaussianMixture {
        components: vec![(0.3, 0.08, 1.0), (0.7, 0.08, 1.0)],
    };
    // Certify the distance of the exact gridded pmf offline first, via a
    // large-sample empirical estimate.
    let mut rng = StdRng::seed_from_u64(73);
    let mut oracle = GriddedOracle::new(&density, 64).unwrap();
    let counts = {
        use few_bins::sampling::SampleOracle;
        oracle.draw_counts(400_000, &mut rng)
    };
    let empirical = counts.empirical().unwrap();
    let bounds = distance_to_hk_bounds(&empirical, 2).unwrap();
    assert!(
        bounds.lower > 0.15,
        "sanity: lower bound {:.3}",
        bounds.lower
    );

    let tester = HistogramTester::practical();
    let mut rejects = 0;
    let trials = 10;
    for _ in 0..trials {
        let mut oracle = GriddedOracle::new(&density, 64).unwrap();
        if !tester
            .test(&mut oracle, 2, 0.15, &mut rng)
            .unwrap()
            .accepted()
        {
            rejects += 1;
        }
    }
    assert!(rejects >= trials - 2, "rejected {rejects}/{trials}");
}

#[test]
fn grid_resolution_tradeoff_is_visible() {
    // A breakpoint at 0.3 misaligned with a coarse grid: finer grids pin
    // the distance of the gridded pmf to H_2 toward zero.
    let density = PiecewiseDensity::new(vec![0.3, 1.0], vec![0.8, 0.2]).unwrap();
    let coarse = gridded_pmf(&density, 8).unwrap();
    let fine = gridded_pmf(&density, 256).unwrap();
    let d_coarse = distance_to_hk_bounds(&coarse, 2).unwrap().upper;
    let d_fine = distance_to_hk_bounds(&fine, 2).unwrap().upper;
    assert!(d_fine <= d_coarse + 1e-12);
    assert!(d_fine < 0.01, "fine grid distance {d_fine}");
}

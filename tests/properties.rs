//! Property-based tests on cross-crate invariants (proptest).

use few_bins::prelude::*;
use histo_core::dp::{best_kpiece_fit, blocks_from_distribution, constrained_distance_to_hk};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random distribution over [n] with n in [2, 40].
fn arb_distribution() -> impl Strategy<Value = Distribution> {
    prop::collection::vec(1u32..1000, 2..40)
        .prop_map(|w| Distribution::from_weights(w.into_iter().map(f64::from).collect()).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dp_bounds_always_bracket((d, k) in (arb_distribution(), 1usize..8)) {
        let b = distance_to_hk_bounds(&d, k).unwrap();
        prop_assert!(b.lower >= 0.0);
        prop_assert!(b.lower <= b.upper + 1e-12);
        prop_assert!(b.upper <= 2.0 * b.lower + 1e-9, "factor-2 relation");
        prop_assert!(b.upper <= 1.0 + 1e-9);
        prop_assert!(b.witness.minimal_pieces() <= k);
        // Membership => zero distance, both directions up to fp.
        if d.is_k_histogram(k) {
            prop_assert!(b.upper < 1e-9);
        }
        if b.lower > 1e-9 {
            prop_assert!(!d.is_k_histogram(k));
        }
    }

    #[test]
    fn dp_lower_bound_monotone_in_k(d in arb_distribution()) {
        let mut prev = f64::INFINITY;
        for k in 1..=d.n().min(10) {
            let b = distance_to_hk_bounds(&d, k).unwrap();
            prop_assert!(b.lower <= prev + 1e-12);
            prev = b.lower;
        }
        // Full pieces => exact representation.
        let b = distance_to_hk_bounds(&d, d.n()).unwrap();
        prop_assert!(b.upper < 1e-9);
    }

    #[test]
    fn constrained_dp_consistent_with_relaxation((d, k) in (arb_distribution(), 1usize..5)) {
        let blocks = blocks_from_distribution(&d);
        let relaxed = best_kpiece_fit(&blocks, k).unwrap().l1_cost / 2.0;
        let constrained = constrained_distance_to_hk(&blocks, k, 120).unwrap();
        // The constrained optimum cannot beat the relaxation (up to grid
        // slack), and must stay within the certified upper bound.
        let slack = k as f64 / 120.0 + 1e-9;
        prop_assert!(constrained + slack >= relaxed);
        let upper = distance_to_hk_bounds(&d, k).unwrap().upper;
        prop_assert!(constrained <= upper + slack);
    }

    #[test]
    fn flattening_contracts_distance_to_histograms(
        (w, k) in (prop::collection::vec(1u32..100, 4..30), 1usize..5)
    ) {
        // Flattening over any partition aligned with the witness's pieces
        // cannot increase the distance... we check the weaker, always-true
        // statement: flatten(d) over the witness partition is at least as
        // close to H_k as d is far (sanity of the witness construction).
        let d = Distribution::from_weights(w.into_iter().map(f64::from).collect()).unwrap();
        let b = distance_to_hk_bounds(&d, k).unwrap();
        let flat = d.flatten(b.witness.partition()).unwrap();
        let fb = distance_to_hk_bounds(&flat, k).unwrap();
        prop_assert!(fb.lower <= b.upper + 1e-9);
    }

    #[test]
    fn sawtooth_instances_are_certified_correctly(
        (n4, k, amp_pct) in (3usize..20, 2usize..5, 10u32..90)
    ) {
        let n = n4 * 4 * 3;
        let base = staircase(n, k).unwrap();
        let amplitude = amp_pct as f64 / 100.0;
        let mut rng = StdRng::seed_from_u64((n4 * 31 + k) as u64);
        let inst = sawtooth_perturbation(&base, k, amplitude, &mut rng).unwrap();
        // Certified lower bound must be dominated by the DP lower bound
        // (both are true lower bounds; the pairing bound is weaker).
        let dp = distance_to_hk_bounds(&inst.dist, k).unwrap();
        prop_assert!(inst.tv_to_hk_lower <= dp.lower + 1e-9,
            "certified {} > dp {}", inst.tv_to_hk_lower, dp.lower);
        prop_assert!(inst.tv_to_hk_upper >= inst.tv_to_hk_lower - 1e-12);
        // Masses preserved per base interval.
        for (j, iv) in base.partition().intervals().iter().enumerate() {
            let diff = (inst.dist.interval_mass(iv) - base.interval_mass(j)).abs();
            prop_assert!(diff < 1e-9);
        }
    }

    #[test]
    fn permuted_distribution_piece_count_vs_cover(
        (support, seed) in (1usize..12, 0u64..500)
    ) {
        // For a zero-padded uniform-support instance: pieces = 2*cover + 1
        // minus boundary corrections; always <= 2*cover + 1.
        let m = 24;
        let n = 400;
        let mut pmf = vec![0.0; m];
        for p in pmf.iter_mut().take(support) {
            *p = 1.0 / support as f64;
        }
        let d = Distribution::new(pmf).unwrap();
        let padded = histo_sampling::generators::zero_pad(&d, n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma = histo_sampling::permutation::random_permutation(n, &mut rng);
        let permuted = padded.permute(&sigma).unwrap();
        let cover = few_bins::lowerbounds::reduction::cover_after_permutation(&padded, &sigma).unwrap();
        prop_assert!(permuted.num_pieces() <= 2 * cover + 1);
        prop_assert!(permuted.num_pieces() >= 2 * cover - 1);
        prop_assert_eq!(permuted.support_size(), support);
    }

    #[test]
    fn alias_sampler_supports_exactly_the_pmf(w in prop::collection::vec(0u32..50, 2..20)) {
        prop_assume!(w.iter().any(|&x| x > 0));
        let d = Distribution::from_weights(w.iter().map(|&x| f64::from(x)).collect()).unwrap();
        let sampler = histo_sampling::AliasSampler::new(&d);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let s = sampler.sample(&mut rng);
            prop_assert!(d.mass(s) > 0.0, "sampled zero-mass element {s}");
        }
    }

    #[test]
    fn khistogram_round_trip(w in prop::collection::vec(1u32..50, 2..30)) {
        let d = Distribution::from_weights(w.into_iter().map(f64::from).collect()).unwrap();
        let h = KHistogram::from_distribution(&d).unwrap();
        let back = h.to_distribution().unwrap();
        prop_assert_eq!(&back, &d);
        prop_assert_eq!(h.minimal_pieces(), d.num_pieces());
    }
}

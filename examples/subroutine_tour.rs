//! A guided tour through Algorithm 1's five stages on one instance, with
//! every intermediate object printed: ApproxPart -> Learner -> Sieve ->
//! Check -> chi-square test.
//!
//! Run with `cargo run --release --example subroutine_tour`.

use few_bins::prelude::*;
use few_bins::testers::adk::ChiSquareTest;
use few_bins::testers::approx_part::approx_part;
use few_bins::testers::learner::{breakpoint_intervals, learn, learning_error};
use few_bins::testers::sieve::sieve;
use histo_core::dp::check_close_to_hk;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), HistoError> {
    let mut rng = StdRng::seed_from_u64(31337);
    let n = 1_200;
    let k = 3;
    let epsilon = 0.25;
    let config = TesterConfig::practical();

    let d = staircase(n, k)?.to_distribution()?;
    println!("instance: {k}-histogram staircase over [{n}], testing H_{k} at eps = {epsilon}\n");
    let mut oracle = DistOracle::new(d.clone()).with_fast_poissonization();

    // Stage 1: ApproxPart (Proposition 3.4).
    let b = config.b(k, epsilon);
    let ap = approx_part(&mut oracle, b, config.approx_part_samples(b), &mut rng)?;
    println!(
        "1. ApproxPart(b = {b:.0}): K = {} intervals, {} singletons, {} samples",
        ap.partition.len(),
        ap.singleton_indices.len(),
        ap.samples_used
    );

    // Stage 2: Learner (Lemma 3.5).
    let eps_learn = epsilon / config.learner_eps_divisor;
    let m_learn = config.learner_samples(ap.partition.len(), eps_learn);
    let d_hat = learn(&mut oracle, &ap.partition, m_learn, &mut rng)?;
    let bp = breakpoint_intervals(&d, &ap.partition);
    println!(
        "2. Learner({} samples): chi2(D̃^J || D̂) = {:.2e} (target {:.2e}); \
         breakpoint intervals: {bp:?}",
        m_learn,
        learning_error(&d, &d_hat)?,
        eps_learn * eps_learn
    );

    // Stage 3: Sieve (Section 3.2.1).
    let before = oracle.samples_drawn();
    let sv = sieve(&mut oracle, &d_hat, k, epsilon, &config, &mut rng)?;
    println!(
        "3. Sieve: discarded {:?} in {} rounds (early accept: {}), {} samples",
        sv.discarded,
        sv.rounds_used,
        sv.early_accept,
        oracle.samples_drawn() - before
    );
    assert!(!sv.rejected, "sieve should not reject a member");
    let surviving = sv.surviving(ap.partition.len());

    // Stage 4: Check (CDGR16 Lemma 4.11 DP).
    let mut counted = vec![false; ap.partition.len()];
    for &j in &surviving {
        counted[j] = true;
    }
    let ok = check_close_to_hk(&d_hat, &counted, k, epsilon / config.check_divisor)?;
    println!(
        "4. Check: exists D* in H_{k} with d^G_TV(D̂, D*) <= eps/{:.0}?  {ok}",
        config.check_divisor
    );

    // Stage 5: the ADK chi-square test on the surviving domain.
    let eps_prime = config.final_eps_factor * epsilon;
    let chi2 = ChiSquareTest::restricted(d_hat, surviving, eps_prime, &config)?;
    let before = oracle.samples_drawn();
    let decision = chi2.run(&mut oracle, &mut rng);
    println!(
        "5. chi-square test at eps' = {eps_prime:.3}: {decision:?} \
         (Poissonized budget m = {:.0}, drew {} samples)",
        chi2.m(),
        oracle.samples_drawn() - before
    );
    println!("\ntotal samples: {} (vs n = {n})", oracle.samples_drawn());
    Ok(())
}

//! The lower-bound constructions, live: the Paninski family `Q_ε`
//! (Proposition 4.1) and the permutation-sprinkling reduction from support
//! size estimation (Proposition 4.2, Lemma 4.4).
//!
//! Run with `cargo run --release --example lower_bound_demo`.

use few_bins::lowerbounds::advantage::{collision_statistic, statistic_advantage, Fixed};
use few_bins::lowerbounds::reduction::cover_after_permutation;
use few_bins::lowerbounds::{QEpsilonFamily, SuppSizeInstance};
use few_bins::prelude::*;
use few_bins::sampling::permutation::random_permutation;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn main() -> Result<(), HistoError> {
    let mut rng = StdRng::seed_from_u64(160);

    // --- Part 1: the sqrt(n) barrier -----------------------------------
    let n = 1_000;
    let eps = 0.12;
    let family = QEpsilonFamily::canonical(n, eps)?;
    println!(
        "Q_eps over [{n}]: every member has d_TV(D, U) = {:.3} and is certified \
         {:.3}-far from H_k for k = {}",
        family.tv_from_uniform(),
        family.certified_distance_to_hk(n / 3 - 1),
        n / 3 - 1
    );

    let uniform = Fixed(Distribution::uniform(n)?);
    let fam = family;
    let members = move |rng: &mut dyn RngCore| fam.sample_member(rng);
    // Members sit at distance delta = c*eps/2 from uniform, so the
    // distinguishing barrier is Theta(sqrt(n)/delta^2).
    let delta = family.tv_from_uniform();
    let barrier = (n as f64).sqrt() / (delta * delta);
    println!("predicted barrier: ~sqrt(n)/delta^2 = {barrier:.0} samples\n");
    println!(
        "{:>10}  {:>10}  advantage of the best collision-count threshold",
        "m", "m/barrier"
    );
    for factor in [0.01, 0.05, 0.2, 1.0, 4.0] {
        let m = (factor * barrier) as u64;
        let adv = statistic_advantage(
            &uniform,
            &members,
            &collision_statistic,
            m.max(2),
            120,
            &mut rng,
        );
        println!("{:>10}  {:>10.2}  {adv:.3}", m, factor);
    }

    // --- Part 2: sprinkling (Lemma 4.4) --------------------------------
    println!("\nLemma 4.4: a random permutation keeps a small support sprinkled.");
    let big_n = 4_200;
    let m = 60;
    let low = SuppSizeInstance::low(m)?; // support 20
    let high = SuppSizeInstance::high(m)?; // support 53
    for (name, inst) in [("low (supp = m/3)", &low), ("high (supp = 7m/8)", &high)] {
        let padded = few_bins::sampling::generators::zero_pad(&inst.dist, big_n)?;
        let k = 2 * (m / 3) + 1;
        let mut pieces_hist = Vec::new();
        for _ in 0..50 {
            let sigma = random_permutation(big_n, &mut rng);
            let c = cover_after_permutation(&padded, &sigma)?;
            pieces_hist.push(2 * c + 1);
        }
        let avg: f64 = pieces_hist.iter().sum::<usize>() as f64 / pieces_hist.len() as f64;
        let far = pieces_hist.iter().filter(|&&p| p > k).count();
        println!(
            "  {name}: avg pieces after sprinkle = {avg:.1} (class boundary k = {k}); \
             exceeds k in {far}/50 draws"
        );
    }
    println!("\n=> a tester for H_k distinguishes the two cases, so it inherits the");
    println!("   Omega(k/log k) support-size lower bound of [VV10].");
    Ok(())
}

//! Quickstart: test whether sampled data is a k-histogram.
//!
//! Run with `cargo run --release --example quickstart`.

use few_bins::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), HistoError> {
    let mut rng = StdRng::seed_from_u64(2023);
    let n = 2_000;
    let k = 5;
    let epsilon = 0.25;

    // --- A genuine 5-histogram -----------------------------------------
    let member = random_k_histogram(n, k, &mut rng)?.to_distribution()?;
    let tester = HistogramTester::practical();

    let mut oracle = DistOracle::new(member.clone()).with_fast_poissonization();
    let decision = tester.test(&mut oracle, k, epsilon, &mut rng)?;
    println!(
        "5-histogram over [{n}]   -> {decision:?} after {} samples",
        oracle.samples_drawn()
    );

    // --- A certified eps-far perturbation of it ------------------------
    let base = KHistogram::from_distribution(&member)?;
    let amplitude = histo_sampling::generators::amplitude_for_certified_distance(&base, k, epsilon)
        .expect("enough pairs to certify the distance")
        .min(0.95);
    let far = sawtooth_perturbation(&base, k, amplitude, &mut rng)?;
    println!(
        "perturbed instance: certified d_TV(D, H_{k}) in [{:.3}, {:.3}]",
        far.tv_to_hk_lower, far.tv_to_hk_upper
    );

    let mut oracle = DistOracle::new(far.dist).with_fast_poissonization();
    let decision = tester.test(&mut oracle, k, epsilon, &mut rng)?;
    println!(
        "far instance             -> {decision:?} after {} samples",
        oracle.samples_drawn()
    );

    // --- Offline certification for comparison --------------------------
    let bounds = distance_to_hk_bounds(&member, k)?;
    println!(
        "offline DP check of the member: d_TV(D, H_{k}) in [{:.4}, {:.4}]",
        bounds.lower, bounds.upper
    );
    Ok(())
}

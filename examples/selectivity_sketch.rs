//! The paper's motivating database application: pick the smallest number
//! of histogram bins that summarizes a column's value distribution within
//! a target error, *from samples only*, then build the succinct sketch.
//!
//! The introduction's recipe: run the tester in a doubling search to find
//! the smallest adequate `k`, then hand that `k` to a learner for the
//! actual summary — paying `o(n)` samples in the search instead of reading
//! the whole column.
//!
//! Run with `cargo run --release --example selectivity_sketch`.

use few_bins::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A synthetic "order amounts" column: a few popular price points on top
/// of two broad regimes — visibly close to a histogram with a handful of
/// bins but not exactly one.
fn order_amounts(n: usize) -> Result<Distribution, HistoError> {
    let body = staircase(n, 4)?.to_distribution()?;
    let bump = gaussian_bump(n, 0.35 * n as f64, 0.02 * n as f64)?;
    mixture(&[(body, 0.92), (bump, 0.08)])
}

fn main() -> Result<(), HistoError> {
    let mut rng = StdRng::seed_from_u64(4242);
    let n = 3_000;
    let epsilon = 0.2;
    let column = order_amounts(n)?;

    println!("column over [{n}]: {} exact pieces", column.num_pieces());

    // --- Stage 1: model selection from samples -------------------------
    let tester = HistogramTester::practical();
    let mut oracle = DistOracle::new(column.clone()).with_fast_poissonization();
    let selection = doubling_search(&tester, &mut oracle, epsilon, 256, 3, true, &mut rng)?;
    let k_hat = selection.selected_k.expect("search should succeed");
    println!(
        "doubling search: k̂ = {k_hat} after decisions {:?} ({} samples total)",
        selection.trials,
        oracle.samples_drawn()
    );

    // --- Stage 2: build the sketch at k̂ --------------------------------
    // (Offline here for exposition; an agnostic learner would use samples.)
    let bounds = distance_to_hk_bounds(&column, k_hat)?;
    let sketch = bounds.witness;
    println!(
        "sketch: {} pieces, approximation error (TV) = {:.4} (target {epsilon})",
        sketch.minimal_pieces(),
        bounds.upper
    );
    println!(
        "compression: {} floats -> {} (breakpoint, level) pairs ({}x)",
        n,
        sketch.minimal_pieces(),
        n / sketch.minimal_pieces().max(1)
    );

    // --- Sanity: the search was not too eager --------------------------
    for probe in [1usize, 2] {
        let b = distance_to_hk_bounds(&column, probe)?;
        println!(
            "  d_TV(column, H_{probe}) in [{:.3}, {:.3}] (should exceed {epsilon} for tiny k)",
            b.lower, b.upper
        );
    }
    Ok(())
}

//! `fewbins report`: offline aggregation of JSONL trace streams.
//!
//! The tracer (PR 2) writes one JSON object per line; this module replays
//! those streams *without* serde — a tiny flat-object parser is enough for
//! the trace schema and keeps the analyzer working under the offline stub
//! build — and folds them into a per-stage table of
//!
//! - **samples** (from the `ledger` footer rows, cross-checked against the
//!   per-span `exit.samples` sums, so the report reproduces the ledger
//!   exactly),
//! - **wall time** (inclusive and exclusive microseconds replayed from the
//!   span stack; exclusive times telescope to the root span duration),
//! - **allocations** (when the trace was produced with the
//!   `alloc-counter` probe attached), and
//! - optional **Theorem 1.1 theory terms** from
//!   [`histo_experiments::theory`], so measured budgets sit side by side
//!   with the `√n/ε²·log k + k/ε³·log²k + k/ε·log(k/ε)` prediction.
//!
//! Multiple trace files aggregate by summation (stage keys are merged in
//! first-seen order). Malformed streams — unbalanced spans, a missing
//! `ledger_total` footer (e.g. a truncated stream from a dropped tracer),
//! or ledger rows that disagree with the span sums — are reported as
//! errors rather than silently producing wrong totals. A truncated
//! stream whose last event family includes a `checkpoint_save` counter
//! is diagnosed as *resumable* (a crashed `--checkpoint` run) rather
//! than corrupt: stitch it with its resumed segment.
//!
//! **Stitching** ([`stitch_streams`] / `fewbins report --stitch`):
//! a crashed `--checkpoint` run leaves a trace segment that ends somewhere
//! after its last `checkpoint_save` counter; the `--resume` run opens a
//! new segment whose first event is a matching `checkpoint_load`. Splicing
//! segment 1 (cut just after the save) onto segment 2 (minus the load)
//! reproduces the uninterrupted run's stream byte-for-byte — the tracer
//! reserves the save's sequence slot for the load, so even the `seq`
//! numbering is seamless.

use histo_experiments::theory;
use histo_experiments::Table;

/// A scalar JSON value as found in trace lines.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    /// JSON string.
    Str(String),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Fractional or exponent-form number.
    F64(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Scalar {
    fn as_u64(&self) -> Option<u64> {
        match self {
            Scalar::U64(v) => Some(*v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"key":scalar,...}`) into key/value
/// pairs. Only the shapes the tracer emits are supported: no nested
/// objects or arrays. Returns a descriptive error on anything else.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let err = |pos: usize, what: &str| format!("byte {pos}: {what}");

    let skip_ws = |bytes: &[u8], pos: &mut usize| {
        while *pos < bytes.len() && (bytes[*pos] as char).is_ascii_whitespace() {
            *pos += 1;
        }
    };

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("byte {}: expected '\"'", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("byte {}: bad escape", *pos)),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let s = &bytes[*pos..];
                    let ch_len = std::str::from_utf8(s)
                        .map_err(|e| e.to_string())?
                        .chars()
                        .next()
                        .map(|c| c.len_utf8())
                        .unwrap_or(1);
                    out.push_str(std::str::from_utf8(&s[..ch_len]).unwrap());
                    *pos += ch_len;
                }
            }
        }
    }

    skip_ws(bytes, &mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err(err(pos, "expected '{'"));
    }
    pos += 1;
    let mut pairs = Vec::new();
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) == Some(&b'}') {
        pos += 1;
    } else {
        loop {
            skip_ws(bytes, &mut pos);
            let key = parse_string(bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            if bytes.get(pos) != Some(&b':') {
                return Err(err(pos, "expected ':'"));
            }
            pos += 1;
            skip_ws(bytes, &mut pos);
            let value = match bytes.get(pos) {
                Some(b'"') => Scalar::Str(parse_string(bytes, &mut pos)?),
                Some(b't') if bytes[pos..].starts_with(b"true") => {
                    pos += 4;
                    Scalar::Bool(true)
                }
                Some(b'f') if bytes[pos..].starts_with(b"false") => {
                    pos += 5;
                    Scalar::Bool(false)
                }
                Some(b'n') if bytes[pos..].starts_with(b"null") => {
                    pos += 4;
                    Scalar::Null
                }
                Some(c) if c.is_ascii_digit() || *c == b'-' => {
                    let start = pos;
                    while pos < bytes.len()
                        && matches!(bytes[pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                    {
                        pos += 1;
                    }
                    let text = std::str::from_utf8(&bytes[start..pos]).unwrap();
                    if text.contains(['.', 'e', 'E']) {
                        Scalar::F64(text.parse().map_err(|e| format!("bad number: {e}"))?)
                    } else if text.starts_with('-') {
                        Scalar::I64(text.parse().map_err(|e| format!("bad number: {e}"))?)
                    } else {
                        Scalar::U64(text.parse().map_err(|e| format!("bad number: {e}"))?)
                    }
                }
                _ => return Err(err(pos, "expected scalar value")),
            };
            pairs.push((key, value));
            skip_ws(bytes, &mut pos);
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {
                    pos += 1;
                    break;
                }
                _ => return Err(err(pos, "expected ',' or '}'")),
            }
        }
    }
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing content after object"));
    }
    Ok(pairs)
}

fn field<'a>(pairs: &'a [(String, Scalar)], key: &str) -> Option<&'a Scalar> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn required_u64(pairs: &[(String, Scalar)], key: &str) -> Result<u64, String> {
    field(pairs, key)
        .and_then(Scalar::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn required_str<'a>(pairs: &'a [(String, Scalar)], key: &str) -> Result<&'a str, String> {
    field(pairs, key)
        .and_then(Scalar::as_str)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

/// Aggregated per-stage measurements across one or more traces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageReport {
    /// Draws charged to the stage (sum of its `ledger` footer rows).
    pub samples: u64,
    /// Sum of per-span exclusive `exit.samples` (must equal `samples`).
    pub span_samples: u64,
    /// Number of closed spans.
    pub spans: u64,
    /// Wall time including nested child spans, microseconds.
    pub inclusive_us: u64,
    /// Wall time excluding nested child spans, microseconds. Summed over
    /// all stages this telescopes to [`TraceReport::root_us`].
    pub exclusive_us: u64,
    /// Heap allocations charged exclusively to the stage.
    pub alloc_count: u64,
    /// Heap bytes charged exclusively to the stage.
    pub alloc_bytes: u64,
}

/// The aggregate of one or more replayed trace files.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// Per-stage rows in first-seen order.
    pub stages: Vec<(String, StageReport)>,
    /// Total wall time of all depth-0 spans, microseconds.
    pub root_us: u64,
    /// Grand total of charged draws (from `ledger_total` footers).
    pub total_samples: u64,
    /// Draws charged while no span was open.
    pub unattributed: u64,
    /// Number of trace files folded in.
    pub files: usize,
    /// Number of events replayed.
    pub events: u64,
    /// Whether any timing fields (`elapsed_us`/`t_us`) were present.
    pub timed: bool,
    /// Whether any allocation fields were present.
    pub has_alloc: bool,
}

/// Theorem 1.1 parameters for the optional theory columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoryParams {
    /// Domain size `n`.
    pub n: usize,
    /// Number of histogram pieces `k`.
    pub k: usize,
    /// Distance parameter `ε`.
    pub epsilon: f64,
}

/// Replay state for one stream: the open-span stack.
struct Frame {
    stage: String,
    child_us: u64,
    enter_t: Option<u64>,
}

impl TraceReport {
    /// Creates an empty report; fold streams in with [`Self::add_stream`].
    pub fn new() -> Self {
        Self::default()
    }

    fn stage_mut(&mut self, name: &str) -> &mut StageReport {
        if let Some(idx) = self.stages.iter().position(|(s, _)| s == name) {
            return &mut self.stages[idx].1;
        }
        self.stages.push((name.to_string(), StageReport::default()));
        &mut self.stages.last_mut().unwrap().1
    }

    /// Replays one JSONL trace stream into the aggregate.
    ///
    /// # Errors
    ///
    /// Returns a message naming `source` and the offending line on parse
    /// failures, unbalanced spans, a missing `ledger_total` footer, a
    /// non-monotone timestamp, or a ledger/span-sum mismatch.
    pub fn add_stream(&mut self, source: &str, text: &str) -> Result<(), String> {
        let mut stack: Vec<Frame> = Vec::new();
        let mut saw_total = false;
        let mut last_t: Option<u64> = None;
        // The last checkpoint_save id seen: a truncated stream carrying
        // one is a crashed-but-resumable run, not a corrupt file.
        let mut last_save: Option<u64> = None;
        // Per-file ledger rows, checked against this file's span sums.
        let mut file_ledger: Vec<(String, u64)> = Vec::new();
        let mut file_span_samples: Vec<(String, u64)> = Vec::new();

        for (lineno, line) in text.lines().enumerate() {
            let at = |what: String| format!("{source}:{}: {what}", lineno + 1);
            if line.trim().is_empty() {
                continue;
            }
            let pairs = parse_flat_object(line).map_err(&at)?;
            self.events += 1;
            let ev = required_str(&pairs, "ev").map_err(&at)?;
            // Timestamps, wherever they appear, must be non-decreasing.
            if let Some(t) = field(&pairs, "t_us").and_then(Scalar::as_u64) {
                self.timed = true;
                if let Some(prev) = last_t {
                    if t < prev {
                        return Err(at(format!("t_us went backwards ({prev} -> {t})")));
                    }
                }
                last_t = Some(t);
            }
            match ev {
                "enter" => {
                    let stage = required_str(&pairs, "stage").map_err(&at)?;
                    let depth = required_u64(&pairs, "depth").map_err(&at)?;
                    if depth as usize != stack.len() {
                        return Err(at(format!(
                            "enter depth {depth} but {} spans open",
                            stack.len()
                        )));
                    }
                    stack.push(Frame {
                        stage: stage.to_string(),
                        child_us: 0,
                        enter_t: field(&pairs, "t_us").and_then(Scalar::as_u64),
                    });
                }
                "exit" => {
                    let stage = required_str(&pairs, "stage").map_err(&at)?;
                    let frame = stack
                        .pop()
                        .ok_or_else(|| at("exit with no open span".into()))?;
                    if frame.stage != stage {
                        return Err(at(format!(
                            "exit stage '{stage}' does not match open span '{}'",
                            frame.stage
                        )));
                    }
                    let samples = required_u64(&pairs, "samples").map_err(&at)?;
                    let elapsed = field(&pairs, "elapsed_us").and_then(Scalar::as_u64);
                    let t_exit = field(&pairs, "t_us").and_then(Scalar::as_u64);
                    if let (Some(e), Some(t0), Some(t1)) = (elapsed, frame.enter_t, t_exit) {
                        if t0 + e != t1 {
                            return Err(at(format!(
                                "elapsed_us {e} != t_us delta {}",
                                t1.saturating_sub(t0)
                            )));
                        }
                    }
                    let alloc_count = field(&pairs, "alloc_count").and_then(Scalar::as_u64);
                    let alloc_bytes = field(&pairs, "alloc_bytes").and_then(Scalar::as_u64);
                    if let Some(e) = elapsed {
                        self.timed = true;
                        match stack.last_mut() {
                            Some(parent) => parent.child_us += e,
                            None => self.root_us += e,
                        }
                    }
                    if alloc_count.is_some() || alloc_bytes.is_some() {
                        self.has_alloc = true;
                    }
                    let row = self.stage_mut(stage);
                    row.spans += 1;
                    row.span_samples += samples;
                    if let Some(e) = elapsed {
                        row.inclusive_us += e;
                        row.exclusive_us += e.saturating_sub(frame.child_us);
                    }
                    if let Some(c) = alloc_count {
                        row.alloc_count += c;
                    }
                    if let Some(b) = alloc_bytes {
                        row.alloc_bytes += b;
                    }
                    bump(&mut file_span_samples, stage, samples);
                }
                "ledger" => {
                    let stage = required_str(&pairs, "stage").map_err(&at)?;
                    let samples = required_u64(&pairs, "samples").map_err(&at)?;
                    bump(&mut file_ledger, stage, samples);
                    self.stage_mut(stage).samples += samples;
                }
                "ledger_total" => {
                    let samples = required_u64(&pairs, "samples").map_err(&at)?;
                    let unattributed = required_u64(&pairs, "unattributed").map_err(&at)?;
                    let row_sum: u64 = file_ledger.iter().map(|(_, s)| s).sum();
                    if row_sum + unattributed != samples {
                        return Err(at(format!(
                            "ledger_total {samples} != row sum {row_sum} + unattributed {unattributed}"
                        )));
                    }
                    self.total_samples += samples;
                    self.unattributed += unattributed;
                    saw_total = true;
                }
                "counter" => {
                    if field(&pairs, "name").and_then(Scalar::as_str) == Some("checkpoint_save") {
                        last_save = field(&pairs, "value").and_then(Scalar::as_u64);
                    }
                }
                other => return Err(at(format!("unknown event '{other}'"))),
            }
        }
        let truncation_hint = match last_save {
            Some(id) => format!(
                "truncated at a checkpoint boundary — resumable: the run saved \
                 checkpoint id {id}; stitch this segment with its resumed one \
                 via `fewbins report --stitch`"
            ),
            None => "truncated trace? no checkpoint_save seen — the stream is \
                     corrupt, not a crashed checkpointed run"
                .to_string(),
        };
        if !stack.is_empty() {
            let open: Vec<&str> = stack.iter().map(|f| f.stage.as_str()).collect();
            return Err(format!(
                "{source}: stream ended with unclosed spans: {} ({truncation_hint})",
                open.join(" > ")
            ));
        }
        if !saw_total {
            return Err(format!(
                "{source}: missing ledger_total footer ({truncation_hint})"
            ));
        }
        // The ledger is derived from the same charges as the spans; any
        // disagreement means the file was edited or corrupted.
        for (stage, charged) in &file_span_samples {
            let ledgered = file_ledger
                .iter()
                .find(|(s, _)| s == stage)
                .map(|(_, v)| *v)
                .unwrap_or(0);
            if ledgered != *charged {
                return Err(format!(
                    "{source}: stage '{stage}' ledger row {ledgered} != span sum {charged}"
                ));
            }
        }
        self.files += 1;
        Ok(())
    }

    /// Renders the human-facing table. Wall-time and allocation columns
    /// appear only when the traces carried them; theory columns only when
    /// `theory` parameters are given.
    pub fn render_table(&self, theory: Option<&TheoryParams>) -> Table {
        let mut headers: Vec<&str> = vec!["stage", "samples", "share", "spans"];
        if self.timed {
            headers.extend(["wall_us", "wall_incl_us", "wall%"]);
        }
        if self.has_alloc {
            headers.extend(["allocs", "alloc_bytes"]);
        }
        if theory.is_some() {
            headers.extend(["theory_term", "samples/term"]);
        }
        let title = format!(
            "fewbins report: {} file(s), {} events",
            self.files, self.events
        );
        let mut table = Table::new(title, &headers);
        let pct = |num: u64, den: u64| {
            if den == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * num as f64 / den as f64)
            }
        };
        for (name, row) in &self.stages {
            let mut cells = vec![
                name.clone(),
                row.samples.to_string(),
                pct(row.samples, self.total_samples),
                row.spans.to_string(),
            ];
            if self.timed {
                cells.push(row.exclusive_us.to_string());
                cells.push(row.inclusive_us.to_string());
                cells.push(pct(row.exclusive_us, self.root_us));
            }
            if self.has_alloc {
                cells.push(row.alloc_count.to_string());
                cells.push(row.alloc_bytes.to_string());
            }
            if let Some(p) = theory {
                match theory::term_for_stage(name, p.n, p.k, p.epsilon) {
                    Some(term) => {
                        cells.push(format!("{term:.0}"));
                        cells.push(format!("{:.3}", row.samples as f64 / term));
                    }
                    None => {
                        cells.push("-".to_string());
                        cells.push("-".to_string());
                    }
                }
            }
            table.push_row(cells);
        }
        // Footer row: ledger totals and the root wall time they sit under.
        let mut total = vec![
            "(total)".to_string(),
            self.total_samples.to_string(),
            "100.0%".to_string(),
            self.stages.iter().map(|(_, r)| r.spans).sum::<u64>().to_string(),
        ];
        if self.timed {
            total.push(self.root_us.to_string());
            total.push(self.root_us.to_string());
            total.push("100.0%".to_string());
        }
        if self.has_alloc {
            total.push(
                self.stages
                    .iter()
                    .map(|(_, r)| r.alloc_count)
                    .sum::<u64>()
                    .to_string(),
            );
            total.push(
                self.stages
                    .iter()
                    .map(|(_, r)| r.alloc_bytes)
                    .sum::<u64>()
                    .to_string(),
            );
        }
        if let Some(p) = theory {
            total.push(format!(
                "{:.0}",
                theory::theorem_1_1_budget(p.n, p.k, p.epsilon)
            ));
            total.push(format!(
                "{:.3}",
                self.total_samples as f64 / theory::theorem_1_1_budget(p.n, p.k, p.epsilon)
            ));
        }
        table.push_row(total);
        table
    }

    /// Serializes the report as one JSON object (hand-rolled, so it works
    /// identically under the offline stub build).
    pub fn to_json(&self, theory: Option<&TheoryParams>) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"files\":{},\"events\":{},\"total_samples\":{},\"unattributed\":{}",
            self.files, self.events, self.total_samples, self.unattributed
        ));
        if self.timed {
            out.push_str(&format!(",\"root_us\":{}", self.root_us));
        }
        out.push_str(",\"stages\":[");
        for (i, (name, row)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"stage\":\"");
            for c in name.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push_str(&format!(
                "\",\"samples\":{},\"spans\":{}",
                row.samples, row.spans
            ));
            if self.timed {
                out.push_str(&format!(
                    ",\"wall_us\":{},\"wall_incl_us\":{}",
                    row.exclusive_us, row.inclusive_us
                ));
            }
            if self.has_alloc {
                out.push_str(&format!(
                    ",\"alloc_count\":{},\"alloc_bytes\":{}",
                    row.alloc_count, row.alloc_bytes
                ));
            }
            if let Some(p) = theory {
                if let Some(term) = theory::term_for_stage(name, p.n, p.k, p.epsilon) {
                    out.push_str(&format!(
                        ",\"theory_term\":{term:.1},\"samples_per_term\":{:.4}",
                        row.samples as f64 / term
                    ));
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn bump(rows: &mut Vec<(String, u64)>, stage: &str, by: u64) {
    match rows.iter_mut().find(|(s, _)| s == stage) {
        Some((_, v)) => *v += by,
        None => rows.push((stage.to_string(), by)),
    }
}

/// Reads and folds trace files into one report.
///
/// # Errors
///
/// I/O failures and malformed streams are formatted with the offending
/// path; the CLI maps them to exit code 3.
pub fn analyze_files(paths: &[String]) -> Result<TraceReport, String> {
    let mut report = TraceReport::new();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        report.add_stream(path, &text)?;
    }
    Ok(report)
}

/// Parses `line` as a `counter` event named `name` and returns its
/// integer value, or `None` for any other line.
fn counter_value(line: &str, name: &str) -> Option<u64> {
    let pairs = parse_flat_object(line).ok()?;
    if field(&pairs, "ev").and_then(Scalar::as_str) != Some("counter") {
        return None;
    }
    if field(&pairs, "name").and_then(Scalar::as_str) != Some(name) {
        return None;
    }
    field(&pairs, "value").and_then(Scalar::as_u64)
}

/// Splices the ordered trace segments of a crashed-and-resumed run back
/// into the uninterrupted run's stream (see the module docs). Each
/// segment after the first must open with a `checkpoint_load` counter;
/// its predecessor is cut just after the matching `checkpoint_save` (the
/// crash tail — events emitted between the last save and the crash — is
/// what gets dropped), and the load line itself is dropped because the
/// kept save already occupies its sequence slot.
///
/// # Errors
///
/// A message naming the offending segment when it does not start with a
/// `checkpoint_load`, or when no matching `checkpoint_save` seam exists
/// in the accumulated prefix.
pub fn stitch_streams(segments: &[(String, String)]) -> Result<String, String> {
    if segments.is_empty() {
        return Err("no trace segments to stitch".into());
    }
    let mut out: Vec<&str> = Vec::new();
    for (i, (source, text)) in segments.iter().enumerate() {
        let mut lines = text.lines();
        if i > 0 {
            let first = lines
                .by_ref()
                .find(|l| !l.trim().is_empty())
                .ok_or_else(|| format!("{source}: resumed segment is empty"))?;
            let id = counter_value(first, "checkpoint_load").ok_or_else(|| {
                format!(
                    "{source}: resumed segment must start with a checkpoint_load \
                     counter, found: {first}"
                )
            })?;
            let seam = out
                .iter()
                .rposition(|l| counter_value(l, "checkpoint_save") == Some(id))
                .ok_or_else(|| {
                    format!(
                        "{source}: no checkpoint_save id={id} seam in the preceding \
                         segment(s) — these files are not consecutive segments of \
                         one run"
                    )
                })?;
            out.truncate(seam + 1);
        }
        out.extend(lines);
    }
    let mut text = out.join("\n");
    text.push('\n');
    Ok(text)
}

/// Reads ordered segment files and stitches them with [`stitch_streams`].
///
/// # Errors
///
/// I/O failures (with the offending path) and every [`stitch_streams`]
/// error.
pub fn stitch_files(paths: &[String]) -> Result<String, String> {
    let mut segments = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        segments.push((path.clone(), text));
    }
    stitch_streams(&segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use histo_trace::{JsonlSink, ManualClock, SharedBuffer, Stage, Tracer};

    fn traced_stream(clocked: bool) -> String {
        let buf = SharedBuffer::new();
        let tracer = Tracer::new(Box::new(JsonlSink::new(buf.clone())));
        let mut tracer = if clocked {
            tracer.with_clock(Box::new(ManualClock::with_step(10)))
        } else {
            tracer.without_timing()
        };
        tracer.enter(Stage::Sieve);
        tracer.charge(40);
        tracer.enter(Stage::AdkTest);
        tracer.charge(5);
        tracer.exit();
        tracer.charge(2);
        tracer.exit();
        tracer.enter(Stage::Learner);
        tracer.charge(13);
        tracer.exit();
        let (_ledger, _timings) = tracer.finish_with_timings();
        String::from_utf8(buf.contents()).unwrap()
    }

    #[test]
    fn parser_handles_scalars_and_escapes() {
        let pairs =
            parse_flat_object(r#"{"a":"x\"y","b":42,"c":-3,"d":0.5,"e":true,"f":null}"#).unwrap();
        assert_eq!(pairs[0], ("a".into(), Scalar::Str("x\"y".into())));
        assert_eq!(pairs[1], ("b".into(), Scalar::U64(42)));
        assert_eq!(pairs[2], ("c".into(), Scalar::I64(-3)));
        assert_eq!(pairs[3], ("d".into(), Scalar::F64(0.5)));
        assert_eq!(pairs[4], ("e".into(), Scalar::Bool(true)));
        assert_eq!(pairs[5], ("f".into(), Scalar::Null));
    }

    #[test]
    fn parser_rejects_trailing_garbage_and_nesting() {
        assert!(parse_flat_object(r#"{"a":1} extra"#).is_err());
        assert!(parse_flat_object(r#"{"a":{"nested":1}}"#).is_err());
        assert!(parse_flat_object(r#"not json"#).is_err());
    }

    #[test]
    fn report_reproduces_ledger_and_splits_wall_time() {
        let text = traced_stream(true);
        let mut report = TraceReport::new();
        report.add_stream("mem", &text).unwrap();
        assert_eq!(report.total_samples, 60);
        assert_eq!(report.unattributed, 0);
        assert!(report.timed);
        let sieve = &report.stages.iter().find(|(s, _)| s == "sieve").unwrap().1;
        // ManualClock step 10: every clock read advances 10µs. The sieve
        // span covers its own enter/exit reads plus the nested adk span.
        assert_eq!(sieve.samples, 42);
        assert_eq!(sieve.spans, 1);
        assert_eq!(sieve.inclusive_us, sieve.exclusive_us + 10);
        let adk = &report
            .stages
            .iter()
            .find(|(s, _)| s == "adk_test")
            .unwrap()
            .1;
        assert_eq!(adk.inclusive_us, 10);
        // Exclusive times telescope to the root wall time.
        let excl: u64 = report.stages.iter().map(|(_, r)| r.exclusive_us).sum();
        assert_eq!(excl, report.root_us);
    }

    #[test]
    fn timing_free_stream_reports_without_wall_columns() {
        let text = traced_stream(false);
        let mut report = TraceReport::new();
        report.add_stream("mem", &text).unwrap();
        assert!(!report.timed);
        assert_eq!(report.total_samples, 60);
        let table = report.render_table(None);
        assert!(!table.headers.iter().any(|h| h.contains("wall")));
        let json = report.to_json(None);
        assert!(!json.contains("root_us"));
        assert!(json.contains("\"total_samples\":60"));
    }

    #[test]
    fn aggregation_sums_across_files() {
        let text = traced_stream(true);
        let mut report = TraceReport::new();
        report.add_stream("a", &text).unwrap();
        report.add_stream("b", &text).unwrap();
        assert_eq!(report.files, 2);
        assert_eq!(report.total_samples, 120);
        let sieve = &report.stages.iter().find(|(s, _)| s == "sieve").unwrap().1;
        assert_eq!(sieve.samples, 84);
        assert_eq!(sieve.spans, 2);
    }

    #[test]
    fn truncated_stream_is_rejected_with_context() {
        let text = traced_stream(true);
        // Drop the footer lines: unclosed ledger.
        let truncated: String = text
            .lines()
            .filter(|l| !l.contains("ledger"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = TraceReport::new()
            .add_stream("trunc", &truncated)
            .unwrap_err();
        assert!(err.contains("ledger_total"), "{err}");
        // Keep only the first enter: unclosed span.
        let open_only = text.lines().next().unwrap().to_string();
        let err = TraceReport::new().add_stream("open", &open_only).unwrap_err();
        assert!(err.contains("unclosed"), "{err}");
    }

    #[test]
    fn tampered_ledger_row_is_detected() {
        let text = traced_stream(true).replace(
            r#"{"ev":"ledger","stage":"learner","samples":13}"#,
            r#"{"ev":"ledger","stage":"learner","samples":14}"#,
        );
        // The footer check trips first: rows no longer sum to the total.
        let err = TraceReport::new().add_stream("bad", &text).unwrap_err();
        assert!(err.contains("ledger"), "{err}");
    }

    #[test]
    fn theory_columns_join_measured_and_predicted() {
        let text = traced_stream(true);
        let mut report = TraceReport::new();
        report.add_stream("mem", &text).unwrap();
        let params = TheoryParams {
            n: 600,
            k: 3,
            epsilon: 0.3,
        };
        let table = report.render_table(Some(&params));
        assert!(table.headers.iter().any(|h| h == "theory_term"));
        let rendered = table.render_text();
        assert!(rendered.contains("sieve"));
        assert!(rendered.contains("(total)"));
        let json = report.to_json(Some(&params));
        assert!(json.contains("theory_term"));
    }

    /// An uninterrupted checkpointed stream, its crashed prefix (segment
    /// 1: everything through the save plus a dangling "crash tail"
    /// enter), and its resumed continuation (segment 2: a load in the
    /// save's seq slot, then the rest).
    fn checkpointed_run() -> (String, String, String) {
        let buf = SharedBuffer::new();
        let mut t = Tracer::new(Box::new(JsonlSink::new(buf.clone()))).without_timing();
        t.enter(Stage::ApproxPart);
        t.charge(10);
        t.exit();
        t.counter("checkpoint_save", 0u64);
        t.enter(Stage::Learner);
        t.charge(5);
        t.exit();
        t.finish();
        let full = String::from_utf8(buf.contents()).unwrap();

        let lines: Vec<&str> = full.lines().collect();
        let save = lines
            .iter()
            .position(|l| l.contains("checkpoint_save"))
            .unwrap();
        let mut seg1: Vec<String> = lines[..=save].iter().map(|l| l.to_string()).collect();
        // The crash tail: the learner span opened but the run died in it.
        seg1.push(lines[save + 1].to_string());
        let mut seg2 = vec![lines[save].replace("checkpoint_save", "checkpoint_load")];
        seg2.extend(lines[save + 1..].iter().map(|l| l.to_string()));
        (full, seg1.join("\n") + "\n", seg2.join("\n") + "\n")
    }

    #[test]
    fn stitching_reproduces_the_uninterrupted_stream_bytewise() {
        let (full, seg1, seg2) = checkpointed_run();
        let stitched = stitch_streams(&[
            ("seg1".to_string(), seg1),
            ("seg2".to_string(), seg2),
        ])
        .unwrap();
        assert_eq!(stitched, full);
        // And the splice is a valid stream in its own right.
        let mut report = TraceReport::new();
        report.add_stream("stitched", &stitched).unwrap();
        assert_eq!(report.total_samples, 15);
    }

    #[test]
    fn stitching_rejects_non_consecutive_segments() {
        let (_, seg1, seg2) = checkpointed_run();
        // A resumed segment must announce itself with a load...
        let err = stitch_streams(&[
            ("a".to_string(), seg1.clone()),
            ("b".to_string(), seg1.clone()),
        ])
        .unwrap_err();
        assert!(err.contains("checkpoint_load"), "{err}");
        // ...and its load id must match a save in the prefix.
        let wrong_id = seg2.replace("\"value\":0", "\"value\":7");
        let err = stitch_streams(&[("a".to_string(), seg1), ("b".to_string(), wrong_id)])
            .unwrap_err();
        assert!(err.contains("seam"), "{err}");
        assert!(stitch_streams(&[]).is_err());
    }

    #[test]
    fn crashed_segment_is_diagnosed_as_resumable_not_corrupt() {
        let (_, seg1, _) = checkpointed_run();
        // Segment 1 ends mid-run (dangling enter, no footer): truncated,
        // but the save it carries makes it resumable — and the report
        // says so instead of calling the file corrupt.
        let err = TraceReport::new().add_stream("seg1", &seg1).unwrap_err();
        assert!(err.contains("resumable"), "{err}");
        assert!(err.contains("checkpoint id 0"), "{err}");
        assert!(err.contains("--stitch"), "{err}");
        // The same truncation without any checkpoint stays "corrupt".
        let plain: String = seg1
            .lines()
            .filter(|l| !l.contains("checkpoint_save"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = TraceReport::new().add_stream("plain", &plain).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
        assert!(!err.contains("resumable"), "{err}");
    }

    #[test]
    fn non_monotone_timestamps_are_rejected() {
        let stream = "\
{\"ev\":\"enter\",\"seq\":0,\"stage\":\"sieve\",\"depth\":0,\"t_us\":50}\n\
{\"ev\":\"exit\",\"seq\":1,\"stage\":\"sieve\",\"depth\":0,\"samples\":0,\"elapsed_us\":0,\"t_us\":40}\n";
        let err = TraceReport::new().add_stream("bad", stream).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }
}

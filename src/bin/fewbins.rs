//! `fewbins` — command-line interface to the histogram tester.
//!
//! Subcommands:
//!
//! - `test`      — test sampled data for membership in `H_k`.
//! - `select-k`  — doubling search for the smallest adequate `k`.
//! - `certify`   — offline DP bounds on `d_TV(D, H_k)` for an explicit pmf.
//! - `sketch`    — agnostically learn a k-histogram sketch from samples.
//!
//! Input formats: `test`/`select-k`/`sketch` read whitespace-separated
//! 0-based sample indices from a file (or stdin with `-`); `certify` reads
//! whitespace-separated non-negative weights (one per domain element).
//!
//! Examples:
//!
//! ```sh
//! fewbins test    --n 1000 --k 4 --eps 0.25 --scale 0.2 samples.txt
//! fewbins select-k --n 1000 --eps 0.2 samples.txt
//! fewbins certify --k 3 pmf.txt
//! fewbins sketch  --n 1000 --k 4 --eps 0.1 samples.txt
//! ```

use few_bins::prelude::*;
use few_bins::testers::agnostic::AgnosticLearner;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::io::Read;
use std::process::ExitCode;

/// Replay oracle over a recorded dataset.
///
/// Two modes, chosen explicitly by the user:
///
/// - **bootstrap** (default): draws with replacement — this tests the
///   dataset's *empirical* distribution, which is only meaningful when the
///   dataset is large relative to the tester's budget (a warning is
///   printed otherwise: a small dataset's empirical distribution is a
///   noisy non-histogram even when the source is one);
/// - **no-resample** (`--no-resample`): consumes each recorded sample
///   exactly once in random order (true i.i.d. semantics) and aborts with
///   a clear error when the dataset is exhausted.
struct ReplayOracle {
    samples: Vec<usize>,
    n: usize,
    drawn: u64,
    pos: usize,
    resample: bool,
}

impl ReplayOracle {
    fn new(mut samples: Vec<usize>, n: usize, resample: bool, rng: &mut StdRng) -> Self {
        use rand::seq::SliceRandom;
        samples.shuffle(rng);
        Self {
            samples,
            n,
            drawn: 0,
            pos: 0,
            resample,
        }
    }
}

impl few_bins::sampling::oracle::SampleOracle for ReplayOracle {
    fn n(&self) -> usize {
        self.n
    }
    fn draw(&mut self, rng: &mut dyn RngCore) -> usize {
        self.drawn += 1;
        if self.resample {
            use rand::Rng;
            let i = (*rng).gen_range(0..self.samples.len());
            self.samples[i]
        } else {
            assert!(
                self.pos < self.samples.len(),
                "dataset exhausted after {} draws; provide more samples, lower --scale, \
                 or allow bootstrap resampling (drop --no-resample)",
                self.drawn - 1
            );
            let s = self.samples[self.pos];
            self.pos += 1;
            s
        }
    }
    fn samples_drawn(&self) -> u64 {
        self.drawn
    }
}

/// Rough estimate of the tester's total draw count for one run, from the
/// config's budget formulas (ApproxPart + Learner + sieve rounds + final
/// χ² batch).
fn estimate_budget(config: &TesterConfig, n: usize, k: usize, eps: f64) -> u64 {
    let b = config.b(k, eps).max(1.0);
    let ap = config.approx_part_samples(b);
    let big_k = (1.5 * b) as usize + 2;
    let learner = config.learner_samples(big_k, eps / config.learner_eps_divisor);
    let alpha = eps / config.sieve.alpha_divisor;
    let m_sieve = config.sieve.sample_factor * (n as f64).sqrt() / (alpha * alpha);
    let rounds = (k as f64).log2().ceil().max(1.0) + 1.0 + config.sieve.extra_rounds as f64;
    let m_test = config.test_samples(n, config.final_eps_factor * eps);
    ap + learner + (rounds * m_sieve) as u64 + m_test as u64
}

/// Runs `body` against `oracle`, optionally wrapped in a tracing
/// [`ScopedOracle`] that writes stage spans and the sample ledger as JSON
/// Lines to `trace_path`. The per-stage summary goes to stderr so stdout
/// stays machine-readable.
fn with_optional_trace<T>(
    oracle: &mut dyn SampleOracle,
    trace_path: &Option<String>,
    body: impl FnOnce(&mut dyn SampleOracle) -> Result<T, String>,
) -> Result<T, String> {
    let Some(path) = trace_path else {
        return body(oracle);
    };
    let sink = JsonlSink::create(path).map_err(|e| format!("creating {path}: {e}"))?;
    let mut scoped = ScopedOracle::new(oracle, Box::new(sink));
    let result = body(&mut scoped);
    let ledger = scoped.finish();
    eprintln!("fewbins: trace written to {path}; samples by stage:");
    for (stage, samples) in ledger.entries() {
        eprintln!("fewbins:   {:>16}  {samples}", stage.name());
    }
    eprintln!(
        "fewbins:   {:>16}  {}  (total {})",
        "unattributed",
        ledger.unattributed(),
        ledger.total()
    );
    result
}

#[derive(Debug, Default)]
struct Args {
    n: Option<usize>,
    k: Option<usize>,
    eps: Option<f64>,
    seed: u64,
    max_k: usize,
    scale: f64,
    no_resample: bool,
    trace: Option<String>,
    file: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<(String, Args), String> {
    let mut it = argv.iter();
    let cmd = it
        .next()
        .ok_or_else(|| "missing subcommand (test | select-k | certify | sketch)".to_string())?
        .clone();
    let mut args = Args {
        seed: 160,
        max_k: 256,
        scale: 1.0,
        ..Default::default()
    };
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match a.as_str() {
            "--n" => args.n = Some(take("--n")?.parse().map_err(|e| format!("--n: {e}"))?),
            "--k" => args.k = Some(take("--k")?.parse().map_err(|e| format!("--k: {e}"))?),
            "--eps" => args.eps = Some(take("--eps")?.parse().map_err(|e| format!("--eps: {e}"))?),
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--max-k" => {
                args.max_k = take("--max-k")?
                    .parse()
                    .map_err(|e| format!("--max-k: {e}"))?
            }
            "--scale" => {
                args.scale = take("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
                if args.scale <= 0.0 {
                    return Err("--scale must be positive".into());
                }
            }
            "--no-resample" => args.no_resample = true,
            "--trace" => args.trace = Some(take("--trace")?),
            other if !other.starts_with("--") => args.file = Some(other.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok((cmd, args))
}

fn read_numbers(path: &Option<String>) -> Result<Vec<String>, String> {
    let mut text = String::new();
    match path.as_deref() {
        None | Some("-") => {
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("reading stdin: {e}"))?;
        }
        Some(p) => {
            text = std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
        }
    }
    Ok(text.split_whitespace().map(|s| s.to_string()).collect())
}

fn read_samples(args: &Args) -> Result<(Vec<usize>, usize), String> {
    let toks = read_numbers(&args.file)?;
    let samples: Vec<usize> = toks
        .iter()
        .map(|t| t.parse::<usize>().map_err(|e| format!("sample `{t}`: {e}")))
        .collect::<Result<_, _>>()?;
    if samples.is_empty() {
        return Err("no samples provided".into());
    }
    let n = match args.n {
        Some(n) => n,
        None => samples.iter().max().copied().unwrap_or(0) + 1,
    };
    if samples.iter().any(|&s| s >= n) {
        return Err(format!("a sample exceeds the domain 0..{n}"));
    }
    Ok((samples, n))
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" {
        eprintln!(
            "usage: fewbins <test|select-k|certify|sketch> [--n N] [--k K] [--eps E] \
             [--seed S] [--max-k M] [--trace out.jsonl] [file|-]"
        );
        return Ok(());
    }
    let (cmd, args) = parse_args(&argv)?;
    let mut rng = StdRng::seed_from_u64(args.seed);

    match cmd.as_str() {
        "test" => {
            let (samples, n) = read_samples(&args)?;
            let k = args.k.ok_or("test requires --k")?;
            let eps = args.eps.unwrap_or(0.25);
            let config = TesterConfig::practical().scaled(args.scale);
            let needed = estimate_budget(&config, n, k, eps);
            if (samples.len() as u64) < needed {
                eprintln!(
                    "fewbins: warning: dataset has {} samples but the tester needs ~{needed}; \
                     {}",
                    samples.len(),
                    if args.no_resample {
                        "this run will abort when the data runs out — lower --scale or add data"
                    } else {
                        "bootstrap resampling will test the (noisy) empirical distribution \
                         instead — prefer more data or a lower --scale"
                    }
                );
            }
            let mut oracle = ReplayOracle::new(samples, n, !args.no_resample, &mut rng);
            let tester = HistogramTester::new(config);
            let decision = with_optional_trace(&mut oracle, &args.trace, |o| {
                tester.test(o, k, eps, &mut rng).map_err(|e| e.to_string())
            })?;
            println!(
                "{} (H_{k} at eps = {eps}; {} draws over [0..{n}))",
                if decision.accepted() {
                    "ACCEPT"
                } else {
                    "REJECT"
                },
                oracle.samples_drawn()
            );
        }
        "select-k" => {
            let (samples, n) = read_samples(&args)?;
            let eps = args.eps.unwrap_or(0.25);
            let config = TesterConfig::practical().scaled(args.scale);
            let mut oracle = ReplayOracle::new(samples, n, !args.no_resample, &mut rng);
            let tester = HistogramTester::new(config);
            let sel = with_optional_trace(&mut oracle, &args.trace, |o| {
                doubling_search(&tester, o, eps, args.max_k, 3, true, &mut rng)
                    .map_err(|e| e.to_string())
            })?;
            match sel.selected_k {
                Some(k) => println!("selected k = {k} (decisions: {:?})", sel.trials),
                None => println!("no k <= {} accepted at eps = {eps}", args.max_k),
            }
        }
        "certify" => {
            if args.trace.is_some() {
                eprintln!("fewbins: warning: --trace is ignored by `certify` (no sampling)");
            }
            let k = args.k.ok_or("certify requires --k")?;
            let toks = read_numbers(&args.file)?;
            let weights: Vec<f64> = toks
                .iter()
                .map(|t| t.parse::<f64>().map_err(|e| format!("weight `{t}`: {e}")))
                .collect::<Result<_, _>>()?;
            let d = Distribution::from_weights(weights).map_err(|e| e.to_string())?;
            let b = distance_to_hk_bounds(&d, k).map_err(|e| e.to_string())?;
            println!(
                "d_TV(D, H_{k}) in [{:.6}, {:.6}]; witness has {} pieces",
                b.lower,
                b.upper,
                b.witness.minimal_pieces()
            );
            if b.upper < 1e-9 {
                println!("D IS a {k}-histogram (distance 0)");
            }
        }
        "sketch" => {
            let (samples, n) = read_samples(&args)?;
            let k = args.k.ok_or("sketch requires --k")?;
            let eps = args.eps.unwrap_or(0.1);
            let mut oracle = ReplayOracle::new(samples, n, !args.no_resample, &mut rng);
            let learner = AgnosticLearner::default();
            let sketch = with_optional_trace(&mut oracle, &args.trace, |o| {
                learner
                    .learn(o, k, eps, &mut rng)
                    .map_err(|e| e.to_string())
            })?;
            println!("# k-histogram sketch: start_index level");
            for (j, iv) in sketch.partition().intervals().iter().enumerate() {
                println!("{} {:.9}", iv.lo(), sketch.levels()[j]);
            }
        }
        other => {
            return Err(format!(
                "unknown subcommand `{other}` (expected test | select-k | certify | sketch)"
            ))
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    // Oracle exhaustion (--no-resample) surfaces as a panic deep inside the
    // tester; present it as a normal CLI error instead of a backtrace.
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("internal error");
        eprintln!("fewbins: {msg}");
    }));
    match std::panic::catch_unwind(run) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(e)) => {
            eprintln!("fewbins: {e}");
            ExitCode::FAILURE
        }
        Err(_) => ExitCode::FAILURE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let (cmd, args) = parse_args(&strs(&[
            "test",
            "--n",
            "100",
            "--k",
            "3",
            "--eps",
            "0.2",
            "--seed",
            "7",
            "--scale",
            "0.5",
            "--no-resample",
            "data.txt",
        ]))
        .unwrap();
        assert_eq!(cmd, "test");
        assert_eq!(args.n, Some(100));
        assert_eq!(args.k, Some(3));
        assert_eq!(args.eps, Some(0.2));
        assert_eq!(args.seed, 7);
        assert_eq!(args.scale, 0.5);
        assert!(args.no_resample);
        assert_eq!(args.file.as_deref(), Some("data.txt"));
    }

    #[test]
    fn parses_trace_flag() {
        let (_, args) = parse_args(&strs(&[
            "test",
            "--k",
            "2",
            "--trace",
            "out.jsonl",
            "d.txt",
        ]))
        .unwrap();
        assert_eq!(args.trace.as_deref(), Some("out.jsonl"));
        assert!(parse_args(&strs(&["test", "--trace"])).is_err());
    }

    #[test]
    fn defaults_apply() {
        let (_, args) = parse_args(&strs(&["certify", "pmf.txt"])).unwrap();
        assert_eq!(args.seed, 160);
        assert_eq!(args.max_k, 256);
        assert_eq!(args.scale, 1.0);
        assert!(!args.no_resample);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(&strs(&["test", "--bogus"])).is_err());
        assert!(parse_args(&strs(&["test", "--n"])).is_err());
        assert!(parse_args(&strs(&["test", "--scale", "-1", "f"])).is_err());
        assert!(parse_args(&strs(&[])).is_err());
    }

    #[test]
    fn replay_oracle_no_resample_exhausts() {
        use few_bins::sampling::oracle::SampleOracle;
        let mut rng = StdRng::seed_from_u64(1);
        let mut o = ReplayOracle::new(vec![0, 1, 2], 3, false, &mut rng);
        for _ in 0..3 {
            o.draw(&mut rng);
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            o.draw(&mut rng);
        }));
        assert!(result.is_err(), "4th draw must abort");
    }

    #[test]
    fn replay_oracle_bootstrap_never_exhausts() {
        use few_bins::sampling::oracle::SampleOracle;
        let mut rng = StdRng::seed_from_u64(1);
        let mut o = ReplayOracle::new(vec![2], 3, true, &mut rng);
        for _ in 0..10 {
            assert_eq!(o.draw(&mut rng), 2);
        }
        assert_eq!(o.samples_drawn(), 10);
    }

    #[test]
    fn budget_estimate_is_sane() {
        let c = TesterConfig::practical();
        let small = estimate_budget(&c, 500, 2, 0.3);
        let large_n = estimate_budget(&c, 8_000, 2, 0.3);
        let large_k = estimate_budget(&c, 500, 8, 0.3);
        assert!(small > 10_000);
        assert!(large_n > small);
        assert!(large_k > small);
    }
}

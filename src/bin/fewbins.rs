//! `fewbins` — command-line interface to the histogram tester.
//!
//! Subcommands:
//!
//! - `test`      — test sampled data for membership in `H_k`.
//! - `select-k`  — doubling search for the smallest adequate `k`.
//! - `certify`   — offline DP bounds on `d_TV(D, H_k)` for an explicit pmf.
//! - `sketch`    — agnostically learn a k-histogram sketch from samples.
//! - `report`    — aggregate JSONL trace files into a per-stage table of
//!   samples, wall time, and allocations (optionally against the
//!   Theorem 1.1 theory terms when `--n`/`--k` are given).
//!
//! Input formats: `test`/`select-k`/`sketch` read whitespace-separated
//! 0-based sample indices from a file (or stdin with `-`); `certify` reads
//! whitespace-separated non-negative weights (one per domain element).
//!
//! Resilience flags (see `docs/ROBUSTNESS.md`): `--faults SPEC` injects a
//! deterministic fault schedule into the oracle, `--max-samples B` caps the
//! total draw budget, and `--retries R` amplifies `test` by majority vote
//! over `R` rounds. Any of these switches `test` onto the resilient
//! runtime, which reports `INCONCLUSIVE` (exit code 5) instead of guessing
//! when the run cannot finish honestly.
//!
//! Recovery flags (same doc, "Crash recovery & deadlines"): `--checkpoint
//! PATH` snapshots the full resumable run state atomically at every
//! pipeline boundary, `--resume` continues a crashed run from that file
//! (bit-identical to the uninterrupted run), and `--deadline-ms` /
//! `--stage-deadline-ms` bound the run (or any one stage) by wall clock,
//! exiting `6` with a typed `INCONCLUSIVE` instead of hanging. Resumed
//! trace segments stitch back together with `fewbins report --stitch`.
//!
//! Exit codes: `0` ok · `1` internal error (including a `crash=` fault
//! firing) · `2` usage error · `3` bad input data (including an
//! unreadable, corrupt, or mismatched checkpoint) · `4` samples exhausted
//! (dataset or budget) · `5` inconclusive · `6` deadline exceeded.
//!
//! Examples:
//!
//! ```sh
//! fewbins test    --n 1000 --k 4 --eps 0.25 --scale 0.2 samples.txt
//! fewbins test    --k 4 --faults eta=0.1,adv=point:0,seed=7 --retries 3 samples.txt
//! fewbins test    --k 4 --trace run.jsonl --metrics run.prom samples.txt
//! fewbins select-k --n 1000 --eps 0.2 samples.txt
//! fewbins certify --k 3 pmf.txt
//! fewbins sketch  --n 1000 --k 4 --eps 0.1 samples.txt
//! fewbins report  --n 1000 --k 4 --eps 0.25 --json run.jsonl
//! ```

use few_bins::core::empirical::SampleCounts;
use few_bins::prelude::*;
use few_bins::report::{analyze_files, stitch_files, TheoryParams, TraceReport};
use few_bins::sampling::SharedRng;
use few_bins::stats::Poisson;
use few_bins::testers::histogram_tester::PipelinePoint;
use few_bins::testers::robust::RunProgress;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::io::Read;
use std::path::Path;
use std::process::ExitCode;

/// A CLI failure with its exit code: `2` usage, `3` input data, `4`
/// samples exhausted, `5` inconclusive (internal panics exit `1`).
struct CliError {
    code: u8,
    msg: String,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        Self {
            code: 2,
            msg: msg.into(),
        }
    }

    fn input(msg: impl Into<String>) -> Self {
        Self {
            code: 3,
            msg: msg.into(),
        }
    }
}

impl From<HistoError> for CliError {
    fn from(e: HistoError) -> Self {
        let code = match &e {
            HistoError::OracleExhausted { .. } => 4,
            HistoError::DeadlineExceeded { .. } => 6,
            HistoError::InjectedCrash { .. } => 1,
            _ => 3,
        };
        Self {
            code,
            msg: e.to_string(),
        }
    }
}

impl From<CheckpointError> for CliError {
    // A checkpoint that cannot be loaded — unreadable, corrupt,
    // truncated, version-skewed, or from a different run — is bad input,
    // never a panic and never a silent restart from scratch.
    fn from(e: CheckpointError) -> Self {
        Self {
            code: 3,
            msg: e.to_string(),
        }
    }
}

/// Replay oracle over a recorded dataset.
///
/// Two modes, chosen explicitly by the user:
///
/// - **bootstrap** (default): draws with replacement — this tests the
///   dataset's *empirical* distribution, which is only meaningful when the
///   dataset is large relative to the tester's budget (a warning is
///   printed otherwise: a small dataset's empirical distribution is a
///   noisy non-histogram even when the source is one);
/// - **no-resample** (`--no-resample`): consumes each recorded sample
///   exactly once in random order (true i.i.d. semantics) and fails with a
///   typed `OracleExhausted` error when the dataset runs out.
struct ReplayOracle {
    samples: Vec<usize>,
    n: usize,
    drawn: u64,
    pos: usize,
    resample: bool,
}

impl ReplayOracle {
    fn new(mut samples: Vec<usize>, n: usize, resample: bool, rng: &mut StdRng) -> Self {
        use rand::seq::SliceRandom;
        samples.shuffle(rng);
        Self {
            samples,
            n,
            drawn: 0,
            pos: 0,
            resample,
        }
    }

    /// Repositions the oracle at a checkpointed draw count. The shuffle
    /// is a pure function of `--seed`, so after reconstructing with the
    /// same seed the first `drawn` no-resample draws are the ones the
    /// crashed run already consumed.
    fn restore(&mut self, drawn: u64) {
        self.drawn = drawn;
        self.pos = (drawn as usize).min(self.samples.len());
    }
}

impl few_bins::sampling::oracle::SampleOracle for ReplayOracle {
    fn n(&self) -> usize {
        self.n
    }
    fn draw(&mut self, rng: &mut dyn RngCore) -> usize {
        self.drawn += 1;
        if self.resample {
            use rand::Rng;
            let i = (*rng).gen_range(0..self.samples.len());
            self.samples[i]
        } else {
            assert!(
                self.pos < self.samples.len(),
                "dataset exhausted after {} draws; provide more samples, lower --scale, \
                 or allow bootstrap resampling (drop --no-resample)",
                self.drawn - 1
            );
            let s = self.samples[self.pos];
            self.pos += 1;
            s
        }
    }
    fn samples_drawn(&self) -> u64 {
        self.drawn
    }
    fn try_draw(&mut self, rng: &mut dyn RngCore) -> Result<usize, HistoError> {
        if !self.resample && self.pos >= self.samples.len() {
            return Err(HistoError::OracleExhausted {
                budget: self.samples.len() as u64,
                drawn: self.drawn,
            });
        }
        Ok(self.draw(rng))
    }
    fn try_draw_counts(
        &mut self,
        m: u64,
        rng: &mut dyn RngCore,
    ) -> Result<SampleCounts, HistoError> {
        let mut counts = vec![0u64; self.n];
        for _ in 0..m {
            counts[self.try_draw(rng)?] += 1;
        }
        Ok(SampleCounts::from_counts(counts).expect("n >= 1"))
    }
    fn try_poissonized_counts(
        &mut self,
        m: f64,
        rng: &mut dyn RngCore,
    ) -> Result<SampleCounts, HistoError> {
        // Same draw sequence as the infallible default (Poisson batch size,
        // then literal draws), but failing gracefully on exhaustion.
        let m_prime = Poisson::new(m).sample(rng);
        self.try_draw_counts(m_prime, rng)
    }
}

/// Rough estimate of the tester's total draw count for one run, from the
/// config's budget formulas (ApproxPart + Learner + sieve rounds + final
/// χ² batch).
fn estimate_budget(config: &TesterConfig, n: usize, k: usize, eps: f64) -> u64 {
    let b = config.b(k, eps).max(1.0);
    let ap = config.approx_part_samples(b);
    let big_k = (1.5 * b) as usize + 2;
    let learner = config.learner_samples(big_k, eps / config.learner_eps_divisor);
    let alpha = eps / config.sieve.alpha_divisor;
    let m_sieve = config.sieve.sample_factor * (n as f64).sqrt() / (alpha * alpha);
    let rounds = (k as f64).log2().ceil().max(1.0) + 1.0 + config.sieve.extra_rounds as f64;
    let m_test = config.test_samples(n, config.final_eps_factor * eps);
    ap + learner + (rounds * m_sieve) as u64 + m_test as u64
}

/// `FEWBINS_TRACE_NO_TIMING=1` drops `t_us`/`elapsed_us` from every
/// trace event, making the stream a pure function of the algorithm —
/// the crash-recovery CI loop byte-compares stitched resumed traces
/// against uninterrupted ones this way.
fn trace_timing_disabled() -> bool {
    std::env::var("FEWBINS_TRACE_NO_TIMING").map_or(false, |v| v == "1")
}

/// Prints the fault-injection summary to stderr (stdout stays
/// machine-readable).
fn report_faults(c: FaultCounters) {
    eprintln!(
        "fewbins: faults injected: {} contaminated, {} duplicated, {} dropped, \
         {} stalled, {} budget hits ({} events total)",
        c.contaminated,
        c.duplicated,
        c.dropped,
        c.stalled,
        c.budget_hits,
        c.total()
    );
}

/// Prints the per-stage sample ledger and wall-time summary to stderr.
fn report_ledger(path: &str, ledger: &SampleLedger, timings: &StageTimings) {
    eprintln!("fewbins: trace written to {path}; samples and wall time by stage:");
    for (stage, samples) in ledger.entries() {
        let wall = timings.stage(*stage);
        eprintln!(
            "fewbins:   {:>16}  {samples:>12}  {:>10} us",
            stage.name(),
            wall.exclusive_us
        );
    }
    eprintln!(
        "fewbins:   {:>16}  {:>12}  (total {} draws, {} us wall)",
        "unattributed",
        ledger.unattributed(),
        ledger.total(),
        timings.root_us()
    );
}

/// Folds end-of-run aggregates the streaming [`MetricsSink`] cannot see —
/// exclusive per-stage wall time needs the span-stack replay the tracer
/// already did — into the registry before exposition.
fn finalize_metrics(registry: &SharedRegistry, timings: &StageTimings) {
    registry.with(|r| {
        r.describe(
            "fewbins_stage_wall_microseconds_total",
            "Exclusive wall time per stage; sums to fewbins_wall_microseconds_total.",
        );
        r.describe(
            "fewbins_wall_microseconds_total",
            "Total wall time of all top-level stage spans.",
        );
        for (stage, wall) in timings.entries() {
            r.counter_add(
                "fewbins_stage_wall_microseconds_total",
                &[("stage", stage.name())],
                wall.exclusive_us,
            );
        }
        r.counter_add("fewbins_wall_microseconds_total", &[], timings.root_us());
    });
}

/// Runs `body` against `oracle` under the requested oracle stack: an
/// optional tracing [`ScopedOracle`] (JSONL spans + sample ledger to
/// `trace_path`, with a [`MetricsSink`] tee when `metrics_path` asks for
/// a Prometheus exposition dump) and an optional [`FaultyOracle`] running
/// `plan`. The fault layer wraps the tracer, so injected fault counters
/// are emitted into the trace stream (and metrics) and audited by
/// `scripts/check_trace.py` / `scripts/check_metrics.py`.
fn with_stack<T>(
    oracle: &mut dyn SampleOracle,
    trace_path: &Option<String>,
    metrics_path: &Option<String>,
    plan: &Option<FaultPlan>,
    body: impl FnOnce(&mut dyn SampleOracle) -> Result<T, CliError>,
) -> Result<T, CliError> {
    if trace_path.is_none() && metrics_path.is_none() {
        return match plan {
            None => body(oracle),
            Some(plan) => {
                let mut faulty = FaultyOracle::new(oracle, plan.clone());
                let result = body(&mut faulty);
                report_faults(faulty.counters());
                result
            }
        };
    }
    let base: Box<dyn TraceSink> = match trace_path {
        Some(path) => Box::new(
            JsonlSink::create(path)
                .map_err(|e| CliError::input(format!("creating {path}: {e}")))?,
        ),
        None => Box::new(NullSink),
    };
    let registry = metrics_path.as_ref().map(|_| SharedRegistry::new());
    let sink: Box<dyn TraceSink> = match &registry {
        Some(reg) => Box::new(MetricsSink::new(reg.clone(), base)),
        None => base,
    };
    let mut tracer = Tracer::new(sink);
    if trace_timing_disabled() {
        tracer = tracer.without_timing();
    }
    let scoped = ScopedOracle::with_tracer(oracle, tracer);
    let (result, ledger, timings) = match plan {
        None => {
            let mut scoped = scoped;
            let result = body(&mut scoped);
            let (ledger, timings) = scoped.finish_with_timings();
            (result, ledger, timings)
        }
        Some(plan) => {
            let mut faulty = FaultyOracle::new(scoped, plan.clone());
            let result = body(&mut faulty);
            faulty.emit_counters();
            report_faults(faulty.counters());
            let (ledger, timings) = faulty.into_inner().finish_with_timings();
            (result, ledger, timings)
        }
    };
    if let Some(path) = trace_path {
        report_ledger(path, &ledger, &timings);
    }
    if let (Some(path), Some(reg)) = (metrics_path, registry) {
        finalize_metrics(&reg, &timings);
        std::fs::write(path, reg.render())
            .map_err(|e| CliError::input(format!("writing {path}: {e}")))?;
        eprintln!("fewbins: metrics written to {path}");
    }
    result
}

#[derive(Debug, Default)]
struct Args {
    n: Option<usize>,
    k: Option<usize>,
    eps: Option<f64>,
    seed: u64,
    max_k: usize,
    scale: f64,
    no_resample: bool,
    trace: Option<String>,
    metrics: Option<String>,
    json: bool,
    faults: Option<String>,
    max_samples: Option<u64>,
    retries: usize,
    checkpoint: Option<String>,
    resume: bool,
    deadline_ms: Option<u64>,
    stage_deadline_ms: Option<u64>,
    stitch: bool,
    stitch_out: Option<String>,
    file: Option<String>,
    files: Vec<String>,
}

fn parse_args(argv: &[String]) -> Result<(String, Args), String> {
    let mut it = argv.iter();
    let cmd = it
        .next()
        .ok_or_else(|| "missing subcommand (test | select-k | certify | sketch)".to_string())?
        .clone();
    let mut args = Args {
        seed: 160,
        max_k: 256,
        scale: 1.0,
        retries: 1,
        ..Default::default()
    };
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match a.as_str() {
            "--n" => args.n = Some(take("--n")?.parse().map_err(|e| format!("--n: {e}"))?),
            "--k" => args.k = Some(take("--k")?.parse().map_err(|e| format!("--k: {e}"))?),
            "--eps" => args.eps = Some(take("--eps")?.parse().map_err(|e| format!("--eps: {e}"))?),
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--max-k" => {
                args.max_k = take("--max-k")?
                    .parse()
                    .map_err(|e| format!("--max-k: {e}"))?
            }
            "--scale" => {
                args.scale = take("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
                if args.scale <= 0.0 {
                    return Err("--scale must be positive".into());
                }
            }
            "--no-resample" => args.no_resample = true,
            "--trace" => args.trace = Some(take("--trace")?),
            "--metrics" => args.metrics = Some(take("--metrics")?),
            "--json" => args.json = true,
            "--faults" => args.faults = Some(take("--faults")?),
            "--max-samples" => {
                args.max_samples = Some(
                    take("--max-samples")?
                        .parse()
                        .map_err(|e| format!("--max-samples: {e}"))?,
                )
            }
            "--retries" => {
                args.retries = take("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
                if args.retries == 0 {
                    return Err("--retries must be at least 1".into());
                }
            }
            "--checkpoint" => args.checkpoint = Some(take("--checkpoint")?),
            "--resume" => args.resume = true,
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    take("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--stage-deadline-ms" => {
                args.stage_deadline_ms = Some(
                    take("--stage-deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--stage-deadline-ms: {e}"))?,
                )
            }
            "--stitch" => args.stitch = true,
            "--stitch-out" => args.stitch_out = Some(take("--stitch-out")?),
            other if !other.starts_with("--") => {
                if args.file.is_none() {
                    args.file = Some(other.to_string());
                }
                args.files.push(other.to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.resume && args.checkpoint.is_none() {
        return Err("--resume requires --checkpoint <path>".into());
    }
    if args.stitch_out.is_some() && !args.stitch {
        return Err("--stitch-out requires --stitch".into());
    }
    Ok((cmd, args))
}

fn read_numbers(path: &Option<String>) -> Result<Vec<String>, String> {
    let mut text = String::new();
    match path.as_deref() {
        None | Some("-") => {
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("reading stdin: {e}"))?;
        }
        Some(p) => {
            text = std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
        }
    }
    Ok(text.split_whitespace().map(|s| s.to_string()).collect())
}

fn read_samples(args: &Args) -> Result<(Vec<usize>, usize), String> {
    let toks = read_numbers(&args.file)?;
    let samples: Vec<usize> = toks
        .iter()
        .map(|t| t.parse::<usize>().map_err(|e| format!("sample `{t}`: {e}")))
        .collect::<Result<_, _>>()?;
    if samples.is_empty() {
        return Err("no samples provided".into());
    }
    let n = match args.n {
        Some(n) => n,
        None => samples.iter().max().copied().unwrap_or(0) + 1,
    };
    if samples.iter().any(|&s| s >= n) {
        return Err(format!("a sample exceeds the domain 0..{n}"));
    }
    Ok((samples, n))
}

/// The fault plan for subcommands without a retry loop: `--max-samples`
/// folds into the plan's budget (taking the tighter of the two caps).
fn fold_budget(plan: Option<FaultPlan>, max_samples: Option<u64>) -> Option<FaultPlan> {
    match (plan, max_samples) {
        (plan, None) => plan,
        (None, Some(cap)) => Some(FaultPlan::none().with_budget(cap)),
        (Some(mut plan), Some(cap)) => {
            plan.budget = Some(plan.budget.map_or(cap, |b| b.min(cap)));
            Some(plan)
        }
    }
}

/// The run-parameter fingerprint stored in every checkpoint. A resume
/// refuses (exit 3) unless the invocation reproduces it exactly. The
/// fault spec is fingerprinted with `crash=` stripped: the resumed run
/// drops the crash trigger but must otherwise match the crashed one.
fn run_fingerprint(args: &Args, n: usize, k: usize, eps: f64, plan: &Option<FaultPlan>) -> String {
    format!(
        "test|n={n}|k={k}|eps={eps}|seed={}|scale={}|resample={}|retries={}|budget={}|faults={}",
        args.seed,
        args.scale,
        !args.no_resample,
        args.retries,
        args.max_samples
            .map_or_else(|| "none".to_string(), |b| b.to_string()),
        plan.as_ref()
            .map_or_else(|| "none".to_string(), |p| p.clone().without_crash().to_string()),
    )
}

/// `test` under the full recovery stack: `--checkpoint`/`--resume` crash
/// recovery and `--deadline-ms`/`--stage-deadline-ms` supervision.
///
/// The oracle stack, bottom to top: [`ReplayOracle`] (the dataset) →
/// [`ScopedOracle`] (tracer: spans, ledger, seq numbers) →
/// [`FaultyOracle`] (injected faults, crash trigger) → `DeadlineOracle`
/// (applied inside [`SupervisedRunner`]). Sampling randomness comes from
/// a portable, serializable [`SharedRng`] stream so a checkpoint can
/// capture and restore it exactly; the dataset shuffle keeps using the
/// seed-derived [`StdRng`], which is reproduced from `--seed` on resume.
///
/// At every pipeline boundary the checkpoint hook snapshots RNG state,
/// runner progress, fault-layer state, and the trace continuation point,
/// writes the file atomically, and emits a `checkpoint_save` counter
/// into the trace. A resume reloads all of that, emits `checkpoint_load`
/// in the save's sequence slot, and re-enters the runner mid-round —
/// `fewbins report --stitch` splices the two trace segments back into
/// the uninterrupted run's byte stream.
fn run_supervised(
    args: &Args,
    samples: Vec<usize>,
    n: usize,
    k: usize,
    eps: f64,
    plan: Option<FaultPlan>,
    shuffle_rng: &mut StdRng,
) -> Result<(), CliError> {
    let config = TesterConfig::practical().scaled(args.scale);
    let fingerprint = run_fingerprint(args, n, k, eps, &plan);
    let loaded = match (&args.checkpoint, args.resume) {
        (Some(path), true) => {
            let cp = Checkpoint::load(Path::new(path))?;
            cp.verify_fingerprint(&fingerprint)?;
            eprintln!(
                "fewbins: resuming from {path} (checkpoint id {}, round {}, {} draws replayed)",
                cp.id, cp.progress.next_round, cp.replay_drawn
            );
            Some(cp)
        }
        _ => None,
    };
    // The resumed run must not re-fire the crash trigger; everything else
    // in the fault schedule continues from the restored fault state.
    let run_plan = match (&plan, args.resume) {
        (Some(p), true) => Some(p.clone().without_crash()),
        (p, _) => p.clone(),
    };

    let mut oracle = ReplayOracle::new(samples, n, !args.no_resample, shuffle_rng);
    if let Some(cp) = &loaded {
        oracle.restore(cp.replay_drawn);
    }
    let rng = match &loaded {
        Some(cp) => SharedRng::from_state(cp.rng),
        None => SharedRng::seed_from(args.seed),
    };

    let base: Box<dyn TraceSink> = match &args.trace {
        Some(path) => Box::new(
            JsonlSink::create(path).map_err(|e| CliError::input(format!("creating {path}: {e}")))?,
        ),
        None => Box::new(NullSink),
    };
    let registry = args.metrics.as_ref().map(|_| SharedRegistry::new());
    let sink: Box<dyn TraceSink> = match &registry {
        Some(reg) => Box::new(MetricsSink::new(reg.clone(), base)),
        None => base,
    };
    let mut tracer = match &loaded {
        Some(cp) => Tracer::resume(sink, cp.resume_seq, cp.ledger.clone(), cp.timings.clone()),
        None => Tracer::new(sink),
    };
    if trace_timing_disabled() {
        tracer = tracer.without_timing();
    }
    let scoped = ScopedOracle::with_tracer(&mut oracle, tracer);
    let mut faulty = FaultyOracle::new(scoped, run_plan.clone().unwrap_or_else(FaultPlan::none));
    if let Some(cp) = &loaded {
        faulty.restore_recovery_state(cp.fault.clone());
        // First event of the resumed segment: reuses the sequence slot of
        // the matching checkpoint_save, so stitched traces renumber
        // seamlessly.
        faulty.trace_counter("checkpoint_load", cp.id.into());
    }

    let mut runner = RobustRunner::new(HistogramTester::new(config)).with_retries(args.retries);
    if let Some(budget) = args.max_samples {
        runner = runner.with_budget(budget);
    }
    let mut supervised = SupervisedRunner::new(runner);
    if let Some(ms) = args.deadline_ms {
        supervised = supervised.with_run_deadline_us(ms.saturating_mul(1_000));
    }
    if let Some(ms) = args.stage_deadline_ms {
        supervised = supervised.with_stage_deadline_us(ms.saturating_mul(1_000));
    }

    let mut next_id = loaded.as_ref().map_or(0, |cp| cp.id + 1);
    let resume_state = loaded.as_ref().map(|cp| cp.resume_state());
    let ckpt_path = args.checkpoint.clone();
    let rng_probe = rng.clone();
    let mut run_rng = rng.clone();
    let result = supervised.run_with_hooks(
        faulty,
        k,
        eps,
        &mut run_rng,
        resume_state,
        &mut |progress: &RunProgress, point: &PipelinePoint, o| {
            let Some(path) = &ckpt_path else {
                return Ok(()); // deadline-only supervision: nothing to save
            };
            // Snapshot BEFORE emitting the save counter: the stored
            // resume_seq is the slot the counter is about to consume,
            // which checkpoint_load reuses on resume.
            let fault = o.inner_mut().recovery_state();
            let replay_drawn = o.inner_mut().inner().samples_drawn();
            let (resume_seq, ledger, timings) = {
                let t = o.tracer().expect("supervised runs always attach a tracer");
                (t.seq(), t.ledger().clone(), t.timings().clone())
            };
            let cp = Checkpoint {
                id: next_id,
                fingerprint: fingerprint.clone(),
                rng: rng_probe.state(),
                replay_drawn,
                resume_seq,
                progress: progress.clone(),
                point: point.clone(),
                fault,
                ledger,
                timings,
            };
            o.trace_counter("checkpoint_save", next_id.into());
            cp.save_atomic(Path::new(path))?;
            next_id += 1;
            Ok(())
        },
    );
    let (outcome, mut faulty) = match result {
        Ok(pair) => pair,
        Err(HistoError::InjectedCrash { after_draws }) => {
            // The oracle stack was consumed by the run; dropping it
            // flushed the trace segment (whole lines, no footer). The
            // checkpoint on disk is the resume point.
            let hint = match &args.checkpoint {
                Some(path) => format!("; rerun with --resume to continue from {path}"),
                None => "; rerun with --checkpoint to make crashes recoverable".to_string(),
            };
            return Err(CliError {
                code: 1,
                msg: format!("simulated crash after {after_draws} draws{hint}"),
            });
        }
        Err(e) => return Err(e.into()),
    };

    if run_plan.is_some() {
        faulty.emit_counters();
        report_faults(faulty.counters());
    }
    let (ledger, timings) = faulty.into_inner().finish_with_timings();
    if let Some(path) = &args.trace {
        report_ledger(path, &ledger, &timings);
    }
    if let (Some(path), Some(reg)) = (&args.metrics, registry) {
        finalize_metrics(&reg, &timings);
        std::fs::write(path, reg.render())
            .map_err(|e| CliError::input(format!("writing {path}: {e}")))?;
        eprintln!("fewbins: metrics written to {path}");
    }

    match outcome {
        Outcome::Conclusive(decision) => {
            println!(
                "{} (H_{k} at eps = {eps}; {} draws over [0..{n}); {} rounds)",
                if decision.accepted() {
                    "ACCEPT"
                } else {
                    "REJECT"
                },
                oracle.samples_drawn(),
                args.retries
            );
            Ok(())
        }
        Outcome::Inconclusive { reason, stage, .. } => {
            let place = stage.map(|s| format!(" in stage {s}")).unwrap_or_default();
            println!("INCONCLUSIVE{place}: {reason}");
            let code = if matches!(reason, InconclusiveReason::DeadlineExceeded { .. }) {
                6
            } else {
                5
            };
            Err(CliError {
                code,
                msg: format!("inconclusive{place}: {reason}"),
            })
        }
    }
}

fn run() -> Result<(), CliError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" {
        eprintln!(
            "usage: fewbins <test|select-k|certify|sketch|report> [--n N] [--k K] [--eps E]\n\
             \x20      [--seed S] [--max-k M] [--scale F] [--no-resample]\n\
             \x20      [--trace out.jsonl] [--metrics out.prom] [--faults SPEC]\n\
             \x20      [--max-samples B] [--retries R] [--checkpoint ckpt] [--resume]\n\
             \x20      [--deadline-ms T] [--stage-deadline-ms T] [--json] [file|-]\n\
             \n\
             fault spec: comma-separated key=value pairs (or `none`), e.g.\n\
             \x20      eta=0.1,adv=point:0,budget=50000,dup=0.01,drop=0.02,stall=5x100,\n\
             \x20      crash=2000,seed=9\n\
             \n\
             recovery: --checkpoint snapshots resumable state at every pipeline\n\
             \x20      boundary; --resume continues a crashed run bit-identically;\n\
             \x20      --deadline-ms/--stage-deadline-ms bound the run by wall clock\n\
             \n\
             report: aggregates one or more --trace outputs into a per-stage\n\
             \x20      table (samples, wall time, allocations); give --n/--k\n\
             \x20      [--eps] to add Theorem 1.1 theory-term columns; --json\n\
             \x20      switches the output format; --stitch treats the files as\n\
             \x20      ordered segments of one crashed-and-resumed run and splices\n\
             \x20      them at their checkpoint seams (--stitch-out saves the\n\
             \x20      spliced stream)\n\
             \n\
             exit codes: 0 ok; 1 internal error (incl. crash= faults); 2 usage;\n\
             \x20      3 bad input data (incl. bad checkpoints); 4 samples\n\
             \x20      exhausted (dataset or budget); 5 inconclusive;\n\
             \x20      6 deadline exceeded"
        );
        return Ok(());
    }
    let (cmd, args) = parse_args(&argv).map_err(CliError::usage)?;
    let plan = args
        .faults
        .as_deref()
        .map(FaultPlan::parse)
        .transpose()
        .map_err(|e| CliError::usage(format!("--faults: {e}")))?;
    let mut rng = StdRng::seed_from_u64(args.seed);

    if args.retries > 1 && cmd != "test" {
        eprintln!("fewbins: warning: --retries only applies to `test`; ignored");
    }
    let supervised = args.checkpoint.is_some()
        || args.resume
        || args.deadline_ms.is_some()
        || args.stage_deadline_ms.is_some();
    if supervised && cmd != "test" {
        eprintln!(
            "fewbins: warning: --checkpoint/--resume/--deadline-ms/--stage-deadline-ms \
             only apply to `test`; ignored"
        );
    }
    if args.stitch && cmd != "report" {
        eprintln!("fewbins: warning: --stitch only applies to `report`; ignored");
    }

    match cmd.as_str() {
        "test" => {
            let (samples, n) = read_samples(&args).map_err(CliError::input)?;
            let k = args.k.ok_or_else(|| CliError::usage("test requires --k"))?;
            let eps = args.eps.unwrap_or(0.25);
            let config = TesterConfig::practical().scaled(args.scale);
            let needed = estimate_budget(&config, n, k, eps);
            if (samples.len() as u64) < needed {
                eprintln!(
                    "fewbins: warning: dataset has {} samples but the tester needs ~{needed}; \
                     {}",
                    samples.len(),
                    if args.no_resample {
                        "this run will fail when the data runs out — lower --scale or add data"
                    } else {
                        "bootstrap resampling will test the (noisy) empirical distribution \
                         instead — prefer more data or a lower --scale"
                    }
                );
            }
            if supervised {
                return run_supervised(&args, samples, n, k, eps, plan, &mut rng);
            }
            let mut oracle = ReplayOracle::new(samples, n, !args.no_resample, &mut rng);
            let tester = HistogramTester::new(config);
            let robust = plan.is_some() || args.max_samples.is_some() || args.retries > 1;
            if robust {
                let mut runner = RobustRunner::new(tester).with_retries(args.retries);
                if let Some(budget) = args.max_samples {
                    runner = runner.with_budget(budget);
                }
                let outcome = with_stack(&mut oracle, &args.trace, &args.metrics, &plan, |o| {
                    runner.run(o, k, eps, &mut rng).map_err(CliError::from)
                })?;
                match outcome {
                    Outcome::Conclusive(decision) => println!(
                        "{} (H_{k} at eps = {eps}; {} draws over [0..{n}); {} rounds)",
                        if decision.accepted() {
                            "ACCEPT"
                        } else {
                            "REJECT"
                        },
                        oracle.samples_drawn(),
                        args.retries
                    ),
                    Outcome::Inconclusive { reason, stage, .. } => {
                        let place = stage.map(|s| format!(" in stage {s}")).unwrap_or_default();
                        println!("INCONCLUSIVE{place}: {reason}");
                        return Err(CliError {
                            code: 5,
                            msg: format!("inconclusive{place}: {reason}"),
                        });
                    }
                }
            } else {
                let decision = with_stack(&mut oracle, &args.trace, &args.metrics, &None, |o| {
                    tester.test(o, k, eps, &mut rng).map_err(CliError::from)
                })?;
                println!(
                    "{} (H_{k} at eps = {eps}; {} draws over [0..{n}))",
                    if decision.accepted() {
                        "ACCEPT"
                    } else {
                        "REJECT"
                    },
                    oracle.samples_drawn()
                );
            }
        }
        "select-k" => {
            let (samples, n) = read_samples(&args).map_err(CliError::input)?;
            let eps = args.eps.unwrap_or(0.25);
            let config = TesterConfig::practical().scaled(args.scale);
            let plan = fold_budget(plan, args.max_samples);
            let mut oracle = ReplayOracle::new(samples, n, !args.no_resample, &mut rng);
            let tester = HistogramTester::new(config);
            let sel = with_stack(&mut oracle, &args.trace, &args.metrics, &plan, |o| {
                doubling_search(&tester, o, eps, args.max_k, 3, true, &mut rng)
                    .map_err(CliError::from)
            })?;
            match sel.selected_k {
                Some(k) => println!("selected k = {k} (decisions: {:?})", sel.trials),
                None => println!("no k <= {} accepted at eps = {eps}", args.max_k),
            }
        }
        "certify" => {
            if args.trace.is_some() || args.metrics.is_some() {
                eprintln!(
                    "fewbins: warning: --trace/--metrics are ignored by `certify` (no sampling)"
                );
            }
            if plan.is_some() || args.max_samples.is_some() {
                eprintln!(
                    "fewbins: warning: --faults/--max-samples are ignored by `certify` \
                     (no sampling)"
                );
            }
            let k = args
                .k
                .ok_or_else(|| CliError::usage("certify requires --k"))?;
            let toks = read_numbers(&args.file).map_err(CliError::input)?;
            let weights: Vec<f64> = toks
                .iter()
                .map(|t| t.parse::<f64>().map_err(|e| format!("weight `{t}`: {e}")))
                .collect::<Result<_, _>>()
                .map_err(CliError::input)?;
            let d = Distribution::from_weights(weights).map_err(CliError::from)?;
            let b = distance_to_hk_bounds(&d, k).map_err(CliError::from)?;
            println!(
                "d_TV(D, H_{k}) in [{:.6}, {:.6}]; witness has {} pieces",
                b.lower,
                b.upper,
                b.witness.minimal_pieces()
            );
            if b.upper < 1e-9 {
                println!("D IS a {k}-histogram (distance 0)");
            }
        }
        "sketch" => {
            let (samples, n) = read_samples(&args).map_err(CliError::input)?;
            let k = args
                .k
                .ok_or_else(|| CliError::usage("sketch requires --k"))?;
            let eps = args.eps.unwrap_or(0.1);
            let plan = fold_budget(plan, args.max_samples);
            let mut oracle = ReplayOracle::new(samples, n, !args.no_resample, &mut rng);
            let learner = AgnosticLearner::default();
            let sketch = with_stack(&mut oracle, &args.trace, &args.metrics, &plan, |o| {
                learner.learn(o, k, eps, &mut rng).map_err(CliError::from)
            })?;
            println!("# k-histogram sketch: start_index level");
            for (j, iv) in sketch.partition().intervals().iter().enumerate() {
                println!("{} {:.9}", iv.lo(), sketch.levels()[j]);
            }
        }
        "report" => {
            if args.files.is_empty() {
                return Err(CliError::usage(
                    "report requires at least one trace file (from a `--trace` run)",
                ));
            }
            let theory = match (args.n, args.k) {
                (Some(n), Some(k)) => Some(TheoryParams {
                    n,
                    k,
                    epsilon: args.eps.unwrap_or(0.25),
                }),
                _ => None,
            };
            let report = if args.stitch {
                let stitched = stitch_files(&args.files).map_err(CliError::input)?;
                if let Some(out) = &args.stitch_out {
                    std::fs::write(out, &stitched)
                        .map_err(|e| CliError::input(format!("writing {out}: {e}")))?;
                    eprintln!("fewbins: stitched trace written to {out}");
                }
                let mut report = TraceReport::new();
                report
                    .add_stream("(stitched)", &stitched)
                    .map_err(CliError::input)?;
                report
            } else {
                analyze_files(&args.files).map_err(CliError::input)?
            };
            if args.json {
                println!("{}", report.to_json(theory.as_ref()));
            } else {
                print!("{}", report.render_table(theory.as_ref()).render_text());
            }
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown subcommand `{other}` (expected test | select-k | certify | sketch | report)"
            )))
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    // A panic that escapes the tester (e.g. an infallible oracle path
    // hitting exhaustion) is presented as a normal CLI error, not a
    // backtrace; it exits 1 where typed failures exit 2–5.
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("internal error");
        eprintln!("fewbins: {msg}");
    }));
    match std::panic::catch_unwind(run) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(e)) => {
            eprintln!("fewbins: {}", e.msg);
            ExitCode::from(e.code)
        }
        Err(_) => ExitCode::FAILURE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let (cmd, args) = parse_args(&strs(&[
            "test",
            "--n",
            "100",
            "--k",
            "3",
            "--eps",
            "0.2",
            "--seed",
            "7",
            "--scale",
            "0.5",
            "--no-resample",
            "data.txt",
        ]))
        .unwrap();
        assert_eq!(cmd, "test");
        assert_eq!(args.n, Some(100));
        assert_eq!(args.k, Some(3));
        assert_eq!(args.eps, Some(0.2));
        assert_eq!(args.seed, 7);
        assert_eq!(args.scale, 0.5);
        assert!(args.no_resample);
        assert_eq!(args.file.as_deref(), Some("data.txt"));
    }

    #[test]
    fn parses_trace_flag() {
        let (_, args) = parse_args(&strs(&[
            "test",
            "--k",
            "2",
            "--trace",
            "out.jsonl",
            "d.txt",
        ]))
        .unwrap();
        assert_eq!(args.trace.as_deref(), Some("out.jsonl"));
        assert!(parse_args(&strs(&["test", "--trace"])).is_err());
    }

    #[test]
    fn parses_metrics_and_json_flags() {
        let (_, args) = parse_args(&strs(&[
            "test",
            "--k",
            "2",
            "--metrics",
            "out.prom",
            "d.txt",
        ]))
        .unwrap();
        assert_eq!(args.metrics.as_deref(), Some("out.prom"));
        assert!(!args.json);
        assert!(parse_args(&strs(&["test", "--metrics"])).is_err());
        let (cmd, args) = parse_args(&strs(&["report", "--json", "a.jsonl", "b.jsonl"])).unwrap();
        assert_eq!(cmd, "report");
        assert!(args.json);
        assert_eq!(args.files, vec!["a.jsonl".to_string(), "b.jsonl".to_string()]);
        assert_eq!(args.file.as_deref(), Some("a.jsonl"));
    }

    #[test]
    fn parses_resilience_flags() {
        let (_, args) = parse_args(&strs(&[
            "test",
            "--k",
            "2",
            "--faults",
            "eta=0.1,seed=3",
            "--max-samples",
            "5000",
            "--retries",
            "3",
            "d.txt",
        ]))
        .unwrap();
        assert_eq!(args.faults.as_deref(), Some("eta=0.1,seed=3"));
        assert_eq!(args.max_samples, Some(5000));
        assert_eq!(args.retries, 3);
        assert!(parse_args(&strs(&["test", "--retries", "0", "d.txt"])).is_err());
        assert!(parse_args(&strs(&["test", "--max-samples", "x", "d.txt"])).is_err());
    }

    #[test]
    fn parses_recovery_flags() {
        let (_, args) = parse_args(&strs(&[
            "test",
            "--k",
            "2",
            "--checkpoint",
            "run.ckpt",
            "--resume",
            "--deadline-ms",
            "5000",
            "--stage-deadline-ms",
            "800",
            "d.txt",
        ]))
        .unwrap();
        assert_eq!(args.checkpoint.as_deref(), Some("run.ckpt"));
        assert!(args.resume);
        assert_eq!(args.deadline_ms, Some(5000));
        assert_eq!(args.stage_deadline_ms, Some(800));
        // --resume is meaningless without a checkpoint file to read.
        assert!(parse_args(&strs(&["test", "--k", "2", "--resume", "d.txt"])).is_err());
        assert!(parse_args(&strs(&["test", "--deadline-ms", "x", "d.txt"])).is_err());
        assert!(parse_args(&strs(&["test", "--checkpoint"])).is_err());
    }

    #[test]
    fn parses_stitch_flags() {
        let (_, args) =
            parse_args(&strs(&["report", "--stitch", "a.jsonl", "b.jsonl"])).unwrap();
        assert!(args.stitch);
        assert!(args.stitch_out.is_none());
        let (_, args) = parse_args(&strs(&[
            "report",
            "--stitch",
            "--stitch-out",
            "full.jsonl",
            "a.jsonl",
            "b.jsonl",
        ]))
        .unwrap();
        assert_eq!(args.stitch_out.as_deref(), Some("full.jsonl"));
        // --stitch-out without --stitch has nothing to write.
        assert!(parse_args(&strs(&["report", "--stitch-out", "x", "a.jsonl"])).is_err());
    }

    #[test]
    fn fingerprint_strips_the_crash_trigger() {
        let args = Args {
            seed: 7,
            scale: 1.0,
            retries: 3,
            ..Default::default()
        };
        let with_crash = FaultPlan::parse("eta=0.1,crash=500,seed=9").unwrap();
        let without = FaultPlan::parse("eta=0.1,seed=9").unwrap();
        let a = run_fingerprint(&args, 300, 2, 0.4, &Some(with_crash));
        let b = run_fingerprint(&args, 300, 2, 0.4, &Some(without));
        assert_eq!(a, b, "crash= must not change the resume identity");
        let c = run_fingerprint(&args, 300, 3, 0.4, &None);
        assert_ne!(a, c);
    }

    #[test]
    fn defaults_apply() {
        let (_, args) = parse_args(&strs(&["certify", "pmf.txt"])).unwrap();
        assert_eq!(args.seed, 160);
        assert_eq!(args.max_k, 256);
        assert_eq!(args.scale, 1.0);
        assert_eq!(args.retries, 1);
        assert!(!args.no_resample);
        assert!(args.faults.is_none());
        assert!(args.max_samples.is_none());
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(&strs(&["test", "--bogus"])).is_err());
        assert!(parse_args(&strs(&["test", "--n"])).is_err());
        assert!(parse_args(&strs(&["test", "--scale", "-1", "f"])).is_err());
        assert!(parse_args(&strs(&[])).is_err());
    }

    #[test]
    fn fold_budget_takes_the_tighter_cap() {
        assert!(fold_budget(None, None).is_none());
        assert_eq!(fold_budget(None, Some(100)).unwrap().budget, Some(100));
        let plan = FaultPlan::none().with_budget(50);
        assert_eq!(
            fold_budget(Some(plan.clone()), Some(100)).unwrap().budget,
            Some(50)
        );
        assert_eq!(fold_budget(Some(plan), None).unwrap().budget, Some(50));
        let loose = FaultPlan::none().with_budget(500);
        assert_eq!(
            fold_budget(Some(loose), Some(100)).unwrap().budget,
            Some(100)
        );
    }

    #[test]
    fn replay_oracle_no_resample_exhausts() {
        use few_bins::sampling::oracle::SampleOracle;
        let mut rng = StdRng::seed_from_u64(1);
        let mut o = ReplayOracle::new(vec![0, 1, 2], 3, false, &mut rng);
        for _ in 0..3 {
            o.draw(&mut rng);
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            o.draw(&mut rng);
        }));
        assert!(result.is_err(), "4th draw must abort");
    }

    #[test]
    fn replay_oracle_try_path_fails_gracefully() {
        use few_bins::sampling::oracle::SampleOracle;
        let mut rng = StdRng::seed_from_u64(1);
        let mut o = ReplayOracle::new(vec![0, 1, 2], 3, false, &mut rng);
        assert!(o.try_draw_counts(3, &mut rng).is_ok());
        let err = o.try_draw(&mut rng).unwrap_err();
        assert!(
            matches!(
                err,
                HistoError::OracleExhausted {
                    budget: 3,
                    drawn: 3
                }
            ),
            "{err:?}"
        );
        // Bootstrap mode never exhausts the try path either.
        let mut o = ReplayOracle::new(vec![2], 3, true, &mut rng);
        for _ in 0..10 {
            assert_eq!(o.try_draw(&mut rng).unwrap(), 2);
        }
    }

    #[test]
    fn replay_oracle_bootstrap_never_exhausts() {
        use few_bins::sampling::oracle::SampleOracle;
        let mut rng = StdRng::seed_from_u64(1);
        let mut o = ReplayOracle::new(vec![2], 3, true, &mut rng);
        for _ in 0..10 {
            assert_eq!(o.draw(&mut rng), 2);
        }
        assert_eq!(o.samples_drawn(), 10);
    }

    #[test]
    fn budget_estimate_is_sane() {
        let c = TesterConfig::practical();
        let small = estimate_budget(&c, 500, 2, 0.3);
        let large_n = estimate_budget(&c, 8_000, 2, 0.3);
        let large_k = estimate_budget(&c, 500, 8, 0.3);
        assert!(small > 10_000);
        assert!(large_n > small);
        assert!(large_k > small);
    }
}

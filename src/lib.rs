#![warn(missing_docs)]

//! # few-bins — Testing Histogram Distributions
//!
//! A full reproduction of Clément L. Canonne, *"Are Few Bins Enough:
//! Testing Histogram Distributions"* (PODS 2016; corrigendum PODS 2023).
//!
//! A distribution `D` over the ordered domain `\[n\] = {1, …, n}` is a
//! **k-histogram** (`D ∈ H_k`) when it is piecewise-constant on at most
//! `k` contiguous intervals. Given i.i.d. samples from an unknown `D`,
//! the tester decides (with probability ≥ 2/3):
//!
//! - **accept** if `D ∈ H_k`;
//! - **reject** if `d_TV(D, H_k) ≥ ε`.
//!
//! The paper's algorithm achieves
//! `O(√n/ε²·log k + (k/ε³)·log²k)` samples (Theorem 1.1), nearly matching
//! the information-theoretic lower bound `Ω(√n/ε² + (k/ε)/log k)`
//! (Theorem 1.2) — both directions are implemented and empirically
//! validated here.
//!
//! ## Quick start
//!
//! ```
//! use few_bins::prelude::*;
//! use rand::SeedableRng;
//!
//! // A genuine 3-histogram over \[300\]:
//! let d = staircase(300, 3)?.to_distribution()?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//!
//! // Black-box sample access (draws are counted):
//! let mut oracle = DistOracle::new(d).with_fast_poissonization();
//!
//! // Is it a 3-histogram, or 0.3-far from every one?
//! let tester = HistogramTester::practical();
//! let decision = tester.test(&mut oracle, 3, 0.3, &mut rng)?;
//! assert!(decision.accepted());
//! println!("decided after {} samples", oracle.samples_drawn());
//! # Ok::<(), few_bins::HistoError>(())
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | distributions, partitions, k-histogram representations, distances, exact DPs |
//! | [`stats`] | special functions, Poisson/binomial, amplification, confidence intervals |
//! | [`trace`] | stage spans, counters, sample ledger, timing clocks, JSONL sinks |
//! | [`metrics`] | zero-dep metrics registry, Prometheus exposition, trace-stream bridge |
//! | [`sampling`] | alias sampler, counting oracles, workload generators |
//! | [`faults`] | deterministic fault injection: Huber contamination, budget caps, stalls, duplicated/dropped draws |
//! | [`testers`] | Algorithm 1 and all subroutines; baselines; model selection; the resilient runtime |
//! | [`recovery`] | checkpoint/resume crash recovery and deadline-supervised runs |
//! | [`lowerbounds`] | the `Q_ε` family, `SuppSize`, the §4.2 reduction |
//! | [`experiments`] | acceptance estimation, budget search, reports |
//! | [`report`] | the `fewbins report` trace analyzer: per-stage samples, wall time, allocations vs theory |

/// Re-export of `histo-core`.
pub use histo_core as core;
/// Re-export of `histo-experiments`.
pub use histo_experiments as experiments;
/// Re-export of `histo-faults`.
pub use histo_faults as faults;
/// Re-export of `histo-lowerbounds`.
pub use histo_lowerbounds as lowerbounds;
/// Re-export of `histo-metrics`.
pub use histo_metrics as metrics;
/// Re-export of `histo-recovery`.
pub use histo_recovery as recovery;
/// Re-export of `histo-sampling`.
pub use histo_sampling as sampling;
/// Re-export of `histo-stats`.
pub use histo_stats as stats;
/// Re-export of `histo-testers`.
pub use histo_testers as testers;
/// Re-export of `histo-trace`.
pub use histo_trace as trace;

pub use histo_core::{Distribution, HistoError, Interval, KHistogram, Partition};

pub mod report;

/// The most common imports in one place.
pub mod prelude {
    pub use histo_core::dp::distance_to_hk_bounds;
    pub use histo_core::{Distribution, HistoError, Interval, KHistogram, Partition};
    pub use histo_faults::{Adversary, FaultCounters, FaultPlan, FaultyOracle};
    pub use histo_sampling::generators::{
        gaussian_bump, geometric, mixture, random_k_histogram, sawtooth_perturbation, staircase,
        uniform_sawtooth, zipf,
    };
    pub use histo_sampling::{BudgetedOracle, DistOracle, SampleOracle, ScopedOracle};
    pub use histo_testers::agnostic::AgnosticLearner;
    pub use histo_testers::config::TesterConfig;
    pub use histo_testers::histogram_tester::{Ablation, HistogramTester, StageError};
    pub use histo_testers::model_selection::doubling_search;
    pub use histo_recovery::{Checkpoint, CheckpointError, DeadlineOracle, SupervisedRunner};
    pub use histo_testers::robust::{InconclusiveReason, Outcome, RobustRunner};
    pub use histo_testers::{Decision, Tester};
    pub use histo_metrics::{MetricsRegistry, MetricsSink, SharedRegistry};
    pub use histo_trace::{
        Clock, JsonlSink, ManualClock, NullSink, SampleLedger, Stage, StageTimings, TraceSink,
        Tracer,
    };
}
